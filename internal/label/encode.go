package label

import (
	"encoding/binary"
	"fmt"
)

// Encoding of labels for storage and the wire protocol.
//
// The paper reports that each tag costs 4 bytes in the tuple encoding
// and that the tag count fits in one previously-unused header byte
// (§8.3). We mirror that layout: a one-byte count followed by one
// 32-bit little-endian word per tag. Tag ids are 64-bit internally, but
// stored ids are compressed through the tag directory so that 32 bits
// suffice on disk, exactly as PostgreSQL OIDs did for IFDB.

// MaxEncodedTags is the maximum number of tags one stored label may
// carry (the count must fit in one byte).
const MaxEncodedTags = 255

// EncodedSize returns the number of bytes AppendEncode will write
// for a label with n tags: 1 count byte plus 4 bytes per tag.
func EncodedSize(n int) int { return 1 + 4*n }

// AppendEncode appends the storage encoding of l to buf and returns
// the extended slice. Stored ids must fit in 32 bits; the tag
// directory guarantees this for ids it allocates in compressed mode,
// and the engine maps CSPRNG ids to dense storage ids before encoding.
func AppendEncode(buf []byte, l Label) ([]byte, error) {
	if len(l) > MaxEncodedTags {
		return buf, fmt.Errorf("label: %d tags exceeds encodable maximum %d", len(l), MaxEncodedTags)
	}
	buf = append(buf, byte(len(l)))
	for _, t := range l {
		if uint64(t) > 0xFFFFFFFF {
			return buf, fmt.Errorf("label: tag %d does not fit in 32-bit storage id", t)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
	}
	return buf, nil
}

// Decode reads a label encoded by AppendEncode from the front of buf,
// returning the label and the number of bytes consumed.
func Decode(buf []byte) (Label, int, error) {
	if len(buf) < 1 {
		return nil, 0, fmt.Errorf("label: short buffer")
	}
	n := int(buf[0])
	need := 1 + 4*n
	if len(buf) < need {
		return nil, 0, fmt.Errorf("label: truncated label (want %d bytes, have %d)", need, len(buf))
	}
	if n == 0 {
		return nil, 1, nil
	}
	l := make(Label, n)
	for i := 0; i < n; i++ {
		l[i] = Tag(binary.LittleEndian.Uint32(buf[1+4*i:]))
	}
	if !l.Normalized() {
		// Stored labels are always written normalized; a violation
		// means corruption.
		return nil, 0, fmt.Errorf("label: stored label not normalized: %v", l)
	}
	return l, need, nil
}
