// Package label implements the tag and label algebra at the heart of the
// IFDB information flow model (paper §3.1).
//
// A Tag is an opaque identifier attached to data to denote a secrecy
// concern (e.g. alice-location). A Label is a set of tags; every data
// object and every process carries one. Labels of data objects are
// immutable; process labels grow as the process reads ("contamination")
// and shrink only through authorized declassification.
//
// Labels are represented as sorted, duplicate-free slices of Tag. All
// operations treat labels as immutable values: they never modify their
// receivers or arguments, and results may share no storage with inputs.
package label

import (
	"fmt"
	"sort"
	"strings"
)

// Tag identifies a single secrecy category. The zero value is invalid.
//
// Tag ids are allocated from a cryptographic PRNG (see the authority
// package) to close the allocation channel discussed in paper §7.3.
type Tag uint64

// InvalidTag is the zero Tag; it never names a real tag.
const InvalidTag Tag = 0

// A Label is a sorted set of tags summarizing the sensitivity of an
// object or process. The empty (nil) label means "public".
type Label []Tag

// Empty is the public label.
var Empty = Label(nil)

// New builds a normalized label from the given tags (sorting and
// deduplicating). The input slice is not retained.
func New(tags ...Tag) Label {
	if len(tags) == 0 {
		return nil
	}
	l := make(Label, len(tags))
	copy(l, tags)
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	// Deduplicate in place.
	out := l[:1]
	for _, t := range l[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// IsEmpty reports whether l is the public label.
func (l Label) IsEmpty() bool { return len(l) == 0 }

// Len returns the number of tags in l.
func (l Label) Len() int { return len(l) }

// Clone returns a copy of l that shares no storage with it.
func (l Label) Clone() Label {
	if len(l) == 0 {
		return nil
	}
	c := make(Label, len(l))
	copy(c, l)
	return c
}

// Has reports whether tag t is a member of l.
func (l Label) Has(t Tag) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= t })
	return i < len(l) && l[i] == t
}

// SubsetOf reports whether every tag of l is also in other (l ⊆ other).
// This is the comparison used by the Information Flow Rule (§3.2): data
// may flow from source LS to destination LD iff LS ⊆ LD.
func (l Label) SubsetOf(other Label) bool {
	if len(l) > len(other) {
		return false
	}
	i, j := 0, 0
	for i < len(l) && j < len(other) {
		switch {
		case l[i] == other[j]:
			i++
			j++
		case l[i] > other[j]:
			j++
		default: // l[i] < other[j]: tag missing from other
			return false
		}
	}
	return i == len(l)
}

// Equal reports whether l and other contain exactly the same tags.
func (l Label) Equal(other Label) bool {
	if len(l) != len(other) {
		return false
	}
	for i := range l {
		if l[i] != other[i] {
			return false
		}
	}
	return true
}

// Union returns l ∪ other.
func (l Label) Union(other Label) Label {
	if len(l) == 0 {
		return other.Clone()
	}
	if len(other) == 0 {
		return l.Clone()
	}
	out := make(Label, 0, len(l)+len(other))
	i, j := 0, 0
	for i < len(l) && j < len(other) {
		switch {
		case l[i] == other[j]:
			out = append(out, l[i])
			i++
			j++
		case l[i] < other[j]:
			out = append(out, l[i])
			i++
		default:
			out = append(out, other[j])
			j++
		}
	}
	out = append(out, l[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns l ∩ other.
func (l Label) Intersect(other Label) Label {
	var out Label
	i, j := 0, 0
	for i < len(l) && j < len(other) {
		switch {
		case l[i] == other[j]:
			out = append(out, l[i])
			i++
			j++
		case l[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Minus returns l \ other.
func (l Label) Minus(other Label) Label {
	if len(other) == 0 {
		return l.Clone()
	}
	var out Label
	j := 0
	for _, t := range l {
		for j < len(other) && other[j] < t {
			j++
		}
		if j < len(other) && other[j] == t {
			continue
		}
		out = append(out, t)
	}
	return out
}

// SymmetricDiff returns (l \ other) ∪ (other \ l): all tags that appear
// in exactly one of the two labels. This is the set the Foreign Key Rule
// (paper §5.2.2) requires the inserting process to declassify.
func (l Label) SymmetricDiff(other Label) Label {
	var out Label
	i, j := 0, 0
	for i < len(l) && j < len(other) {
		switch {
		case l[i] == other[j]:
			i++
			j++
		case l[i] < other[j]:
			out = append(out, l[i])
			i++
		default:
			out = append(out, other[j])
			j++
		}
	}
	out = append(out, l[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Add returns l ∪ {t}.
func (l Label) Add(t Tag) Label {
	if l.Has(t) {
		return l.Clone()
	}
	out := make(Label, 0, len(l)+1)
	inserted := false
	for _, x := range l {
		if !inserted && t < x {
			out = append(out, t)
			inserted = true
		}
		out = append(out, x)
	}
	if !inserted {
		out = append(out, t)
	}
	return out
}

// Remove returns l \ {t}.
func (l Label) Remove(t Tag) Label {
	if !l.Has(t) {
		return l.Clone()
	}
	out := make(Label, 0, len(l)-1)
	for _, x := range l {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}

// Normalized reports whether l is sorted and duplicate-free, i.e. a
// canonical label value. All labels produced by this package are
// normalized; the check exists for validating labels that cross the
// wire protocol or are decoded from storage.
func (l Label) Normalized() bool {
	for i := 1; i < len(l); i++ {
		if l[i-1] >= l[i] {
			return false
		}
	}
	return true
}

// String renders the label as "{t1,t2,...}" for diagnostics.
func (l Label) String() string {
	if len(l) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range l {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", uint64(t))
	}
	b.WriteByte('}')
	return b.String()
}

// CanFlow reports whether information may flow from a source labeled
// src to a destination labeled dst under the Information Flow Rule.
func CanFlow(src, dst Label) bool { return src.SubsetOf(dst) }
