package cartelweb

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestMixSumsToOne(t *testing.T) {
	sum := 0.0
	for _, m := range Mix {
		sum += m.Freq
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("mix sums to %f", sum)
	}
}

func TestObservedMixMatchesSpec(t *testing.T) {
	obs := ObservedMix(100000)
	for _, m := range Mix {
		if math.Abs(obs[m.Script]-m.Freq) > 0.01 {
			t.Errorf("%s: observed %.4f, spec %.2f", m.Script, obs[m.Script], m.Freq)
		}
	}
}

func TestSetupAndRequests(t *testing.T) {
	cfg := Config{IFC: true, Users: 4, CarsPer: 1, PointsPer: 10}
	b, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if err := b.DoSampledRequest(rng); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for _, m := range Mix {
		if err := b.DoScript(rng, m.Script); err != nil {
			t.Fatalf("%s: %v", m.Script, err)
		}
	}
	if err := b.DoScript(rng, "login.php"); err != nil {
		t.Fatal(err)
	}
}

func TestRunAndLatencies(t *testing.T) {
	cfg := DefaultConfig(false)
	cfg.Users = 4
	cfg.PointsPer = 10
	b, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wips, err := b.Run(2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if wips <= 0 {
		t.Fatal("no throughput")
	}
	stats, err := b.Latencies(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 7 {
		t.Fatalf("latency scripts: %d", len(stats))
	}
	for _, st := range stats {
		if st.Mean <= 0 || st.P90 <= 0 {
			t.Fatalf("%s: zero latency", st.Script)
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := render(100, []byte("x"))
	bv := render(100, []byte("x"))
	if a != bv {
		t.Fatal("render not deterministic")
	}
	if render(100, []byte("y")) == a {
		t.Fatal("render ignores seed")
	}
}
