// Package cartelweb drives the CarTel web portal with the TPC-W-style
// workload of paper §8.2.1: simulated clients issue HTTP-like requests
// against the script handlers following the Fig. 3 distribution.
//
// Two regimes reproduce Fig. 4's two rows:
//
//   - db-bound: many concurrent workers, negligible per-request render
//     work — throughput is limited by the database;
//   - web-bound: substantial per-request render work on the platform
//     side — throughput is limited by the (DIFC-tracking) platform,
//     which is where the paper's PHP-IF overhead appeared.
//
// For latency (Fig. 5) a single client issues each script serially on
// an idle system.
package cartelweb

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ifdb"
	"ifdb/apps/cartel"
	"ifdb/platform"
)

// Mix is the Fig. 3 request distribution (excluding login).
var Mix = []struct {
	Script string
	Freq   float64
}{
	{"get_cars.php", 0.50},
	{"cars.php", 0.30},
	{"drives.php", 0.08},
	{"drives_top.php", 0.08},
	{"friends.php", 0.03},
	{"edit_account.php", 0.01},
}

// Config sizes the deployment.
type Config struct {
	IFC        bool
	Users      int
	CarsPer    int
	PointsPer  int // GPS points ingested per car at setup
	RenderWork int // per-request platform-side work units (web-bound regime)
}

// DefaultConfig is a laptop-scale CarTel population.
func DefaultConfig(ifc bool) Config {
	return Config{IFC: ifc, Users: 20, CarsPer: 2, PointsPer: 40}
}

// Bench is a loaded CarTel deployment plus its user population.
type Bench struct {
	App   *cartel.App
	Cfg   Config
	users []*cartel.User

	// Requests counts completed requests during Run.
	Requests atomic.Int64
}

// Setup builds the deployment: users, cars, friendships, and ingested
// GPS traces.
func Setup(cfg Config) (*Bench, error) {
	cartel.ResetCountersForTest()
	db := ifdb.MustOpen(ifdb.Config{IFC: cfg.IFC})
	app, err := cartel.Setup(db)
	if err != nil {
		return nil, err
	}
	b := &Bench{App: app, Cfg: cfg}
	rng := rand.New(rand.NewSource(1))
	carID := int64(0)
	for i := 0; i < cfg.Users; i++ {
		u, err := app.Register(int64(i+1), fmt.Sprintf("user%d", i+1), "pw", fmt.Sprintf("u%d@cartel", i+1))
		if err != nil {
			return nil, err
		}
		b.users = append(b.users, u)
		for c := 0; c < cfg.CarsPer; c++ {
			carID++
			if err := app.AddCar(carID, u.ID, fmt.Sprintf("CAR-%d", carID)); err != nil {
				return nil, err
			}
			pts := make([]cartel.Point, cfg.PointsPer)
			base := int64(1000 + rng.Intn(1000))
			lat, lon := 42.36, -71.09
			for p := range pts {
				lat += (rng.Float64() - 0.5) * 0.002
				lon += (rng.Float64() - 0.5) * 0.002
				pts[p] = cartel.Point{Lat: lat, Lon: lon, TS: base + int64(p)*30}
			}
			if err := app.IngestBatch(u, carID, pts); err != nil {
				return nil, err
			}
		}
	}
	// A ring of friendships so drives.php has friend data to show.
	for i, u := range b.users {
		f := b.users[(i+1)%len(b.users)]
		if u != f {
			if err := app.Befriend(u, f); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// pickScript samples the Fig. 3 mix.
func pickScript(rng *rand.Rand) string {
	x := rng.Float64()
	acc := 0.0
	for _, m := range Mix {
		acc += m.Freq
		if x < acc {
			return m.Script
		}
	}
	return Mix[0].Script
}

// render burns platform-side CPU, standing in for the HTML templating
// the web server does per request. Identical for baseline and IFDB, so
// any throughput difference in the web-bound regime is the DIFC
// tracking itself.
func render(units int, seed []byte) uint64 {
	h := fnv.New64a()
	for i := 0; i < units; i++ {
		h.Write(seed)
		h.Write([]byte{byte(i)})
	}
	return h.Sum64()
}

// doRequest runs one request through the platform with output
// interposition, returning the script used.
func (b *Bench) doRequest(rng *rand.Rand, script string) error {
	u := b.users[rng.Intn(len(b.users))]
	h := b.App.Handlers()[script]
	var sink countWriter
	if err := b.App.RT.ServeRequest(u.Principal, func(pr *platform.Process, args map[string]string) error {
		if err := h(pr, args); err != nil {
			return err
		}
		render(b.Cfg.RenderWork, []byte(script))
		return nil
	}, map[string]string{"user": u.Name, "password": "pw"}, &sink); err != nil {
		return err
	}
	b.Requests.Add(1)
	return nil
}

// DoSampledRequest issues one request drawn from the Fig. 3 mix
// (for testing.B drivers).
func (b *Bench) DoSampledRequest(rng *rand.Rand) error {
	return b.doRequest(rng, pickScript(rng))
}

// DoScript issues one request for a specific script.
func (b *Bench) DoScript(rng *rand.Rand, script string) error {
	return b.doRequest(rng, script)
}

type countWriter int64

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}

var _ io.Writer = (*countWriter)(nil)

// Run drives workers closed-loop clients (zero think time, peak
// throughput) for d and returns web interactions per second.
func (b *Bench) Run(workers int, d time.Duration) (wips float64, err error) {
	b.Requests.Store(0)
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rerr := b.doRequest(rng, pickScript(rng)); rerr != nil {
					errCh <- rerr
					return
				}
			}
		}(int64(i) + 101)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	select {
	case err = <-errCh:
		return 0, err
	default:
	}
	return float64(b.Requests.Load()) / d.Seconds(), nil
}

// LatencyStat is one script's idle-system latency (Fig. 5).
type LatencyStat struct {
	Script string
	Mean   time.Duration
	P90    time.Duration
}

// Latencies measures per-script response time with one serial client,
// n samples per script, including login.php (Fig. 5's seven bars).
// The mean is computed from batch timing (per-call clock reads would
// dominate at microsecond latencies); the P90 comes from per-call
// samples taken in a second, smaller pass.
func (b *Bench) Latencies(n int) ([]LatencyStat, error) {
	rng := rand.New(rand.NewSource(3))
	scripts := []string{"login.php"}
	for _, m := range Mix {
		scripts = append(scripts, m.Script)
	}
	var out []LatencyStat
	for _, script := range scripts {
		// Warm up (fills statement caches, steadies allocator).
		for i := 0; i < n/10+1; i++ {
			if err := b.doRequest(rng, script); err != nil {
				return nil, fmt.Errorf("%s: %w", script, err)
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := b.doRequest(rng, script); err != nil {
				return nil, fmt.Errorf("%s: %w", script, err)
			}
		}
		mean := time.Since(start) / time.Duration(n)

		perCall := n / 4
		if perCall < 20 {
			perCall = 20
		}
		durs := make([]time.Duration, 0, perCall)
		for i := 0; i < perCall; i++ {
			t0 := time.Now()
			if err := b.doRequest(rng, script); err != nil {
				return nil, fmt.Errorf("%s: %w", script, err)
			}
			durs = append(durs, time.Since(t0))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		out = append(out, LatencyStat{
			Script: script,
			Mean:   mean,
			P90:    durs[(len(durs)*9)/10],
		})
	}
	return out, nil
}

// ObservedMix runs n sampled picks and returns the empirical script
// distribution — the Fig. 3 regeneration (E1).
func ObservedMix(n int) map[string]float64 {
	rng := rand.New(rand.NewSource(9))
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[pickScript(rng)]++
	}
	out := make(map[string]float64, len(counts))
	for k, v := range counts {
		out[k] = float64(v) / float64(n)
	}
	return out
}
