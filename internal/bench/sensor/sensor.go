// Package sensor reproduces the sensor-data-processing experiment of
// paper §8.2.2: GPS measurements are replayed into the database as
// fast as possible, 200 inserts per transaction, with the
// trigger-driven pipeline (LocationsLatest upsert + drive derivation)
// firing per insert. The paper measured 2479 measurements/s on
// PostgreSQL vs 2439 on IFDB (−1.6%); the reproduction compares the
// same two configurations of our engine.
package sensor

import (
	"fmt"
	"math/rand"
	"time"

	"ifdb"
	"ifdb/apps/cartel"
)

// BatchSize matches the paper's 200 inserts per transaction.
const BatchSize = 200

// Bench is a CarTel deployment prepared for ingest replay.
type Bench struct {
	App   *cartel.App
	users []*cartel.User
	cars  []int64
}

// Setup builds a deployment with the given number of cars (one user
// per car, as CarTel's per-car upload batches imply).
func Setup(ifc bool, cars int) (*Bench, error) {
	cartel.ResetCountersForTest()
	db := ifdb.MustOpen(ifdb.Config{IFC: ifc})
	app, err := cartel.Setup(db)
	if err != nil {
		return nil, err
	}
	b := &Bench{App: app}
	for i := 0; i < cars; i++ {
		u, err := app.Register(int64(i+1), fmt.Sprintf("driver%d", i+1), "pw", "")
		if err != nil {
			return nil, err
		}
		carID := int64(i + 1)
		if err := app.AddCar(carID, u.ID, fmt.Sprintf("CAR-%d", carID)); err != nil {
			return nil, err
		}
		b.users = append(b.users, u)
		b.cars = append(b.cars, carID)
	}
	return b, nil
}

// trace builds one batch of synthetic GPS points continuing from ts.
func trace(rng *rand.Rand, n int, ts int64) []cartel.Point {
	pts := make([]cartel.Point, n)
	lat, lon := 42.36, -71.09
	for i := range pts {
		lat += (rng.Float64() - 0.5) * 0.002
		lon += (rng.Float64() - 0.5) * 0.002
		pts[i] = cartel.Point{Lat: lat, Lon: lon, TS: ts + int64(i)*15}
	}
	return pts
}

// ReplayBatches ingests batches round-robin across cars and returns
// measurements per second.
func (b *Bench) ReplayBatches(batches int) (measPerSec float64, err error) {
	rng := rand.New(rand.NewSource(77))
	start := time.Now()
	ts := int64(1000)
	for i := 0; i < batches; i++ {
		idx := i % len(b.cars)
		pts := trace(rng, BatchSize, ts)
		if err := b.App.IngestBatch(b.users[idx], b.cars[idx], pts); err != nil {
			return 0, err
		}
		ts += int64(BatchSize)*15 + 3600 // gap: next batch is a new drive
	}
	elapsed := time.Since(start)
	return float64(batches*BatchSize) / elapsed.Seconds(), nil
}

// CompareInterleaved measures baseline vs IFDB ingest throughput with
// the two configurations interleaved batch by batch, so machine-wide
// interference (shared/virtualized hosts) hits both equally. It
// returns measurements/second for each.
func CompareInterleaved(cars, batches int) (baseRate, ifdbRate float64, err error) {
	base, err := Setup(false, cars)
	if err != nil {
		return 0, 0, err
	}
	withIFC, err := Setup(true, cars)
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(77))
	ts := int64(1000)
	var baseTime, ifdbTime time.Duration
	for i := 0; i < batches; i++ {
		idx := i % cars
		pts := trace(rng, BatchSize, ts)
		t0 := time.Now()
		if err := base.App.IngestBatch(base.users[idx], base.cars[idx], pts); err != nil {
			return 0, 0, err
		}
		baseTime += time.Since(t0)
		t1 := time.Now()
		if err := withIFC.App.IngestBatch(withIFC.users[idx], withIFC.cars[idx], pts); err != nil {
			return 0, 0, err
		}
		ifdbTime += time.Since(t1)
		ts += int64(BatchSize)*15 + 3600
	}
	meas := float64(batches * BatchSize)
	return meas / baseTime.Seconds(), meas / ifdbTime.Seconds(), nil
}

// ReplayOne ingests a single batch (for testing.B iterations).
func (b *Bench) ReplayOne(i int, ts int64) error {
	rng := rand.New(rand.NewSource(int64(i)))
	idx := i % len(b.cars)
	return b.App.IngestBatch(b.users[idx], b.cars[idx], trace(rng, BatchSize, ts))
}
