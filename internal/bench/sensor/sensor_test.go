package sensor

import (
	"testing"
)

func TestReplayDerivesDrives(t *testing.T) {
	b, err := Setup(true, 2)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := b.ReplayBatches(4)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatal("no throughput")
	}
	// Each batch is one drive (gaps between batches exceed the drive
	// gap), alternating across 2 cars: 4 batches → 4 drives, visible
	// under the all_drives compound via the stats closure.
	u := b.users[0]
	s := b.App.DB.NewSession(u.Principal)
	if err := s.AddSecrecy(u.DrivesTag); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT COUNT(*), SUM(npoints) FROM drives`)
	if err != nil {
		t.Fatal(err)
	}
	// User 0's car got batches 0 and 2.
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("drives for car 1: %v", res.Rows[0][0])
	}
	if res.Rows[0][1].Int() != 2*BatchSize {
		t.Fatalf("points: %v", res.Rows[0][1])
	}
	// Locations carry {drives, location}; invisible without both tags.
	res, err = s.Exec(`SELECT COUNT(*) FROM locations`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Fatal("raw locations visible without location tag")
	}
}

func TestBaselineModeWorks(t *testing.T) {
	b, err := Setup(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ReplayOne(0, 1000); err != nil {
		t.Fatal(err)
	}
	admin := b.App.DB.AdminSession()
	res, err := admin.Exec(`SELECT COUNT(*) FROM locations`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != int64(BatchSize) {
		t.Fatalf("locations: %v", res.Rows[0][0])
	}
}
