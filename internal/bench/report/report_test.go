package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ifdb/internal/obs"
)

func sample() *Report {
	return &Report{
		Schema:   Schema,
		Duration: "3s",
		Workers:  8,
		Seed:     42,
		Experiments: []Experiment{
			{
				Name: "prepared",
				Groups: []Group{
					{Label: "inline literals (re-parse)", StmtsPerSec: 30000, Ops: 90000, P50Us: 150, P99Us: 2000, P999Us: 11000},
					{Label: "prepared handles", StmtsPerSec: 50000, Ops: 150000, P50Us: 85, P99Us: 950, P999Us: 12000},
				},
			},
			{
				Name:    "mixed-tenant",
				Arrival: "poisson",
				Rate:    5000,
				Groups: []Group{
					{Label: "tenant-0", StmtsPerSec: 8000, Ops: 24000, P50Us: 200, P99Us: 3000, P999Us: 9000},
				},
				Notes: map[string]float64{"shards": 2},
			},
		},
		Registry: &obs.Snapshot{Counters: map[string]int64{
			"ifdb_wal_fsync_total":     1000,
			"ifdb_engine_parses_total": 90000,
		}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := sample()
	path := filepath.Join(t.TempDir(), "BENCH_X.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Experiments) != 2 {
		t.Fatalf("round trip lost shape: %+v", got)
	}
	if got.Experiments[0].Groups[1].StmtsPerSec != 50000 {
		t.Fatalf("round trip lost numbers")
	}
	if got.Registry.Counters["ifdb_wal_fsync_total"] != 1000 {
		t.Fatalf("round trip lost registry")
	}
}

// TestLoadLegacyBench6 loads the committed BENCH_6.json — the report
// from the previous PR, in the pre-schema shape — which is exactly
// what -diff must keep understanding.
func TestLoadLegacyBench6(t *testing.T) {
	r, err := Load(filepath.Join("..", "..", "..", "BENCH_6.json"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != 1 {
		t.Fatalf("legacy schema = %d, want 1", r.Schema)
	}
	if len(r.Experiments) != 1 || r.Experiments[0].Name != "prepared" {
		t.Fatalf("legacy experiments = %+v", r.Experiments)
	}
	if len(r.Experiments[0].Groups) != 5 {
		t.Fatalf("legacy groups = %d, want 5", len(r.Experiments[0].Groups))
	}
	g := r.Experiments[0].Groups[2]
	if g.Label != "prepared handles" || g.StmtsPerSec != 51426 {
		t.Fatalf("legacy group = %+v", g)
	}
	if r.Registry == nil || r.Registry.Counters["ifdb_wal_fsync_total"] != 1002 {
		t.Fatalf("legacy registry not converted")
	}
	if r.RegistryOverhead == nil || r.RegistryOverhead.Pairs != 150 {
		t.Fatalf("legacy overhead not converted")
	}
}

// TestDiffAgainstLegacy is the acceptance criterion: a schema-2 report
// diffs against the committed BENCH_6.json without error, matching on
// the group labels both share.
func TestDiffAgainstLegacy(t *testing.T) {
	old, err := Load(filepath.Join("..", "..", "..", "BENCH_6.json"))
	if err != nil {
		t.Fatal(err)
	}
	deltas := Diff(old, sample(), 10)
	var matched bool
	for _, d := range deltas {
		if strings.HasPrefix(d.Metric, "prepared/prepared handles/") {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("diff matched no shared groups: %+v", deltas)
	}
}

func TestDiffDirections(t *testing.T) {
	old := &Report{Schema: Schema, Experiments: []Experiment{{
		Name: "e",
		Groups: []Group{
			{Label: "g", StmtsPerSec: 1000, Ops: 1, P50Us: 100, P99Us: 1000, P999Us: 2000},
		},
	}}}
	cur := &Report{Schema: Schema, Experiments: []Experiment{{
		Name: "e",
		Groups: []Group{
			{Label: "g", StmtsPerSec: 800, Ops: 1, P50Us: 100, P99Us: 1300, P999Us: 2000, Failures: 3},
		},
	}}}
	deltas := Diff(old, cur, 10)
	byMetric := map[string]Delta{}
	for _, d := range deltas {
		byMetric[d.Metric] = d
	}
	// 20% throughput drop: positive Pct, regression at 10%.
	if d := byMetric["e/g/stmts_per_sec"]; !d.Regression || d.Pct < 19 || d.Pct > 21 {
		t.Fatalf("throughput delta = %+v", d)
	}
	// 30% p99 rise: regression.
	if d := byMetric["e/g/p99_us"]; !d.Regression || d.Pct < 29 || d.Pct > 31 {
		t.Fatalf("p99 delta = %+v", d)
	}
	// Unchanged p50: no regression.
	if d := byMetric["e/g/p50_us"]; d.Regression || d.Pct != 0 {
		t.Fatalf("p50 delta = %+v", d)
	}
	// Failures appeared from zero: regression.
	if d := byMetric["e/g/failures"]; !d.Regression {
		t.Fatalf("failures delta = %+v", d)
	}
	if n := len(Regressions(deltas)); n != 3 {
		t.Fatalf("regressions = %d, want 3", n)
	}
	// Generous threshold: only the failures (+100% from zero) trip it.
	if n := len(Regressions(Diff(old, cur, 50))); n != 1 {
		t.Fatalf("regressions at 50%% threshold = %d, want 1", n)
	}
	// Improvement is never a regression.
	if n := len(Regressions(Diff(cur, old, 10))); n != 0 {
		t.Fatalf("improvement flagged as regression: %d", n)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Report){
		"bad schema":     func(r *Report) { r.Schema = Schema + 1 },
		"no experiments": func(r *Report) { r.Experiments = nil },
		"unnamed exp":    func(r *Report) { r.Experiments[0].Name = "" },
		"dup exp":        func(r *Report) { r.Experiments[1].Name = r.Experiments[0].Name },
		"no groups":      func(r *Report) { r.Experiments[0].Groups = nil },
		"unnamed group":  func(r *Report) { r.Experiments[0].Groups[0].Label = "" },
		"dup group":      func(r *Report) { r.Experiments[0].Groups[1].Label = r.Experiments[0].Groups[0].Label },
		"negative ops":   func(r *Report) { r.Experiments[0].Groups[0].Ops = -1 },
	}
	for name, mutate := range cases {
		r := sample()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"notjson.json":  "][",
		"wrongish.json": `{"hello":"world"}`,
		"future.json":   `{"schema":99,"experiments":[]}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("missing file accepted")
	}
}
