// Package report defines the schema-versioned BENCH_*.json perf
// report that ifdb-bench emits, a loader that also understands the
// legacy (pre-schema) BENCH_6.json shape, and the threshold diff that
// turns two reports into a perf-trajectory verdict. One file per PR,
// committed; `ifdb-bench -diff old.json new.json` is how a reviewer
// answers "did this PR cost us throughput?".
package report

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"ifdb/internal/obs"
)

// Schema is the current report schema version. Loaders sniff this
// field; its absence means the legacy BENCH_6 shape.
const Schema = 2

// Report is one benchmark run: several experiments, each with
// per-group (mode or cohort) results, plus a registry snapshot scoped
// to the run.
type Report struct {
	Schema int `json:"schema"`
	// Generated is an RFC3339 timestamp. Informational only — the diff
	// ignores it.
	Generated string `json:"generated,omitempty"`
	// Duration is the per-experiment wall-clock budget (Go duration
	// string).
	Duration string `json:"duration,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	// Seed is the sim seed every experiment's schedule was generated
	// from. Two reports with equal seeds measured identical workloads.
	Seed        int64        `json:"seed,omitempty"`
	Experiments []Experiment `json:"experiments"`
	// Registry is the obs snapshot delta covering the whole run
	// (fsyncs, parses, cancels, retries, fan-out widths, per-shard
	// routing).
	Registry *obs.Snapshot `json:"registry,omitempty"`
	// RegistryOverhead is the optional metrics-off vs metrics-on A/B.
	RegistryOverhead *Overhead `json:"registry_overhead,omitempty"`
}

// Experiment is one named experiment's results.
type Experiment struct {
	Name    string  `json:"name"`
	Arrival string  `json:"arrival,omitempty"`
	Rate    float64 `json:"rate,omitempty"`
	// Groups are the experiment's comparison units: execution modes
	// for `prepared`, tenant cohorts for `mixed-tenant`, roles for
	// `replica-read`.
	Groups []Group `json:"groups"`
	// Notes carries experiment-specific scalars (per-shard row counts,
	// replica read fractions). Diffed informationally, never a
	// regression verdict.
	Notes map[string]float64 `json:"notes,omitempty"`
}

// Group is one mode/cohort's measured numbers. Field names match the
// legacy per-mode object so a legacy report converts losslessly.
type Group struct {
	Label         string  `json:"label"`
	StmtsPerSec   float64 `json:"stmts_per_sec"`
	Ops           int64   `json:"ops"`
	Failures      int64   `json:"failures"`
	Parses        int64   `json:"parses,omitempty"`
	ParsesPerStmt float64 `json:"parses_per_stmt,omitempty"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	P999Us        float64 `json:"p999_us"`
}

// Overhead is the metrics-off vs metrics-on A/B result.
type Overhead struct {
	Pairs             int     `json:"pairs"`
	DisabledStmtsRate float64 `json:"disabled_stmts_per_sec"`
	EnabledStmtsRate  float64 `json:"enabled_stmts_per_sec"`
	RegressionPct     float64 `json:"regression_pct"`
}

// legacyReport is the pre-schema BENCH_6.json shape.
type legacyReport struct {
	Experiment      string           `json:"experiment"`
	Timestamp       string           `json:"timestamp"`
	DurationPerMode string           `json:"duration_per_mode"`
	Workers         int              `json:"workers"`
	Modes           []Group          `json:"modes"`
	Registry        map[string]int64 `json:"registry"`
	Overhead        *Overhead        `json:"registry_overhead"`
}

// Load reads a BENCH_*.json report, accepting both the current schema
// and the legacy BENCH_6 shape (converted to a Schema-1 Report so the
// diff can compare across the format change).
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sniff struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &sniff); err != nil {
		return nil, fmt.Errorf("%s: not a JSON report: %w", path, err)
	}
	if sniff.Schema == 0 {
		var leg legacyReport
		if err := json.Unmarshal(data, &leg); err != nil {
			return nil, fmt.Errorf("%s: decode legacy report: %w", path, err)
		}
		if leg.Experiment == "" || len(leg.Modes) == 0 {
			return nil, fmt.Errorf("%s: neither a schema-%d nor a legacy report", path, Schema)
		}
		r := &Report{
			Schema:           1,
			Generated:        leg.Timestamp,
			Duration:         leg.DurationPerMode,
			Workers:          leg.Workers,
			Experiments:      []Experiment{{Name: leg.Experiment, Groups: leg.Modes}},
			RegistryOverhead: leg.Overhead,
		}
		if len(leg.Registry) > 0 {
			r.Registry = &obs.Snapshot{Counters: leg.Registry}
		}
		return r, r.Validate()
	}
	if sniff.Schema > Schema {
		return nil, fmt.Errorf("%s: schema %d is newer than this binary understands (%d)", path, sniff.Schema, Schema)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: decode report: %w", path, err)
	}
	return &r, r.Validate()
}

// Validate checks structural invariants a diff relies on.
func (r *Report) Validate() error {
	if r.Schema < 1 || r.Schema > Schema {
		return fmt.Errorf("report: schema %d out of range [1,%d]", r.Schema, Schema)
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("report: no experiments")
	}
	seenExp := map[string]bool{}
	for _, e := range r.Experiments {
		if e.Name == "" {
			return fmt.Errorf("report: experiment with no name")
		}
		if seenExp[e.Name] {
			return fmt.Errorf("report: duplicate experiment %q", e.Name)
		}
		seenExp[e.Name] = true
		if len(e.Groups) == 0 {
			return fmt.Errorf("report: experiment %q has no groups", e.Name)
		}
		seenGrp := map[string]bool{}
		for _, g := range e.Groups {
			if g.Label == "" {
				return fmt.Errorf("report: experiment %q has a group with no label", e.Name)
			}
			if seenGrp[g.Label] {
				return fmt.Errorf("report: experiment %q has duplicate group %q", e.Name, g.Label)
			}
			seenGrp[g.Label] = true
			if g.Ops < 0 || g.Failures < 0 || g.StmtsPerSec < 0 ||
				math.IsNaN(g.StmtsPerSec) || math.IsInf(g.StmtsPerSec, 0) {
				return fmt.Errorf("report: experiment %q group %q has invalid numbers", e.Name, g.Label)
			}
		}
	}
	return nil
}

// Save writes the report to path as indented JSON.
func (r *Report) Save(path string) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Delta is one metric's movement between two reports.
type Delta struct {
	// Metric is "experiment/group/metric" (or "registry/<counter>").
	Metric string
	Old    float64
	New    float64
	// Pct is the relative change in percent, signed so that positive
	// is always *worse* (throughput drop, latency rise, failure rise).
	Pct float64
	// Regression marks deltas past the diff threshold on a
	// quality-bearing metric. Informational deltas (registry counters,
	// notes) never set it.
	Regression bool
}

// Diff compares two reports group by group. A group metric that moved
// in the bad direction by more than thresholdPct becomes a regression;
// groups present in only one report are reported (as ±100%) but not
// regressions, since the experiment set legitimately grows across PRs.
// Registry counter deltas ride along informationally.
func Diff(prev, cur *Report, thresholdPct float64) []Delta {
	var out []Delta
	oldExp := map[string]*Experiment{}
	for i := range prev.Experiments {
		oldExp[prev.Experiments[i].Name] = &prev.Experiments[i]
	}
	for i := range cur.Experiments {
		ne := &cur.Experiments[i]
		oe, ok := oldExp[ne.Name]
		if !ok {
			continue // new experiment: nothing to compare
		}
		oldGrp := map[string]*Group{}
		for j := range oe.Groups {
			oldGrp[oe.Groups[j].Label] = &oe.Groups[j]
		}
		for j := range ne.Groups {
			ng := &ne.Groups[j]
			og, ok := oldGrp[ng.Label]
			if !ok {
				continue
			}
			prefix := ne.Name + "/" + ng.Label + "/"
			out = append(out,
				delta(prefix+"stmts_per_sec", og.StmtsPerSec, ng.StmtsPerSec, -1, thresholdPct),
				delta(prefix+"p50_us", og.P50Us, ng.P50Us, +1, thresholdPct),
				delta(prefix+"p99_us", og.P99Us, ng.P99Us, +1, thresholdPct),
				delta(prefix+"p999_us", og.P999Us, ng.P999Us, +1, thresholdPct),
				delta(prefix+"failures", float64(og.Failures), float64(ng.Failures), +1, thresholdPct),
			)
		}
	}
	if prev.Registry != nil && cur.Registry != nil {
		names := make([]string, 0, len(cur.Registry.Counters))
		for name := range cur.Registry.Counters {
			if _, ok := prev.Registry.Counters[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			ov, nv := float64(prev.Registry.Counters[name]), float64(cur.Registry.Counters[name])
			if ov == 0 && nv == 0 {
				continue
			}
			d := delta("registry/"+name, ov, nv, +1, thresholdPct)
			d.Regression = false // registry counts are informational
			out = append(out, d)
		}
	}
	return out
}

// delta builds one Delta. dir is +1 when an increase is bad (latency,
// failures), -1 when a decrease is bad (throughput).
func delta(metric string, prev, cur float64, dir float64, thresholdPct float64) Delta {
	d := Delta{Metric: metric, Old: prev, New: cur}
	switch {
	case prev == 0 && cur == 0:
		d.Pct = 0
	case prev == 0:
		d.Pct = 100 * dir // appeared from zero
	default:
		d.Pct = (cur - prev) / prev * 100 * dir
	}
	d.Regression = d.Pct > thresholdPct
	return d
}

// Regressions filters a diff to the deltas flagged as regressions.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}
