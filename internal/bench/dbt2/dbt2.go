// Package dbt2 implements the DBT-2 / TPC-C-style workload the paper
// uses in §8.3 (Fig. 6) to measure the cost of labels: a New-Order
// transaction mix over the classic warehouse/district/customer/stock
// schema, with every tuple carrying a configurable number of tags.
//
// As in the paper, think time is zero, the warehouse count is fixed,
// and the metric is NOTPM (new-order transactions per minute). The
// in-memory configuration uses the default heap; the disk-bound
// configuration puts the big tables on the paged heap behind a small
// buffer pool, so extra label bytes translate into extra page I/O —
// the mechanism behind Fig. 6's steeper on-disk slope.
package dbt2

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ifdb"
	"ifdb/internal/txn"
)

// Config scales the workload.
type Config struct {
	Warehouses   int  // paper: 10 in-memory, 150 on-disk
	Items        int  // items in the catalog (TPC-C: 100000; scaled down)
	CustomersPer int  // customers per district (TPC-C: 3000; scaled down)
	Districts    int  // districts per warehouse (TPC-C: 10)
	OnDisk       bool // place big tables on the paged heap
	TagsPerLabel int  // 0..10: tags carried by every tuple (Fig. 6 x-axis)
	IFC          bool // information flow control on (IFDB) or off (baseline)

	// BufferPoolPages caps the per-table pool in OnDisk mode; small
	// values force eviction (the "disk-bound" regime).
	BufferPoolPages int
}

// DefaultInMemory mirrors the paper's in-memory run, scaled to a
// laptop-sized working set.
func DefaultInMemory() Config {
	return Config{Warehouses: 4, Items: 1000, CustomersPer: 30, Districts: 10}
}

// DefaultOnDisk mirrors the paper's disk-bound run: more warehouses
// than the buffer pool can hold.
func DefaultOnDisk() Config {
	return Config{Warehouses: 8, Items: 1000, CustomersPer: 30, Districts: 10,
		OnDisk: true, BufferPoolPages: 64}
}

// Bench is a loaded DBT-2 database ready to run transactions.
type Bench struct {
	DB   *ifdb.DB
	Cfg  Config
	tags []ifdb.Tag

	oIDs atomic.Int64

	// Committed and Aborted count transaction outcomes.
	Committed, Aborted atomic.Int64
}

// Setup creates and loads the database.
func Setup(cfg Config) (*Bench, error) {
	db := ifdb.MustOpen(ifdb.Config{IFC: cfg.IFC, BufferPoolPages: cfg.BufferPoolPages})
	b := &Bench{DB: db, Cfg: cfg}

	admin := db.AdminSession()
	using := ""
	if cfg.OnDisk {
		using = " USING DISK"
	}
	ddl := fmt.Sprintf(`
	CREATE TABLE warehouse (
		w_id BIGINT PRIMARY KEY, w_name TEXT, w_tax DOUBLE PRECISION, w_ytd DOUBLE PRECISION
	);
	CREATE TABLE district (
		d_w_id BIGINT, d_id BIGINT, d_tax DOUBLE PRECISION, d_ytd DOUBLE PRECISION,
		d_next_o_id BIGINT,
		PRIMARY KEY (d_w_id, d_id)
	);
	CREATE TABLE customer (
		c_w_id BIGINT, c_d_id BIGINT, c_id BIGINT,
		c_name TEXT, c_balance DOUBLE PRECISION,
		PRIMARY KEY (c_w_id, c_d_id, c_id)
	)%[1]s;
	CREATE TABLE item (
		i_id BIGINT PRIMARY KEY, i_name TEXT, i_price DOUBLE PRECISION
	);
	CREATE TABLE stock (
		s_w_id BIGINT, s_i_id BIGINT, s_quantity BIGINT,
		s_ytd BIGINT, s_order_cnt BIGINT,
		PRIMARY KEY (s_w_id, s_i_id)
	)%[1]s;
	CREATE TABLE orders (
		o_w_id BIGINT, o_d_id BIGINT, o_id BIGINT,
		o_c_id BIGINT, o_entry_d BIGINT, o_ol_cnt BIGINT,
		PRIMARY KEY (o_w_id, o_d_id, o_id)
	)%[1]s;
	CREATE TABLE new_order (
		no_w_id BIGINT, no_d_id BIGINT, no_o_id BIGINT,
		PRIMARY KEY (no_w_id, no_d_id, no_o_id)
	)%[1]s;
	CREATE TABLE order_line (
		ol_w_id BIGINT, ol_d_id BIGINT, ol_o_id BIGINT, ol_number BIGINT,
		ol_i_id BIGINT, ol_quantity BIGINT, ol_amount DOUBLE PRECISION
	)%[1]s;
	CREATE INDEX order_line_pk ON order_line (ol_w_id, ol_d_id, ol_o_id, ol_number);
	`, using)
	if _, err := admin.Exec(ddl); err != nil {
		return nil, fmt.Errorf("dbt2: schema: %w", err)
	}

	// Tags shared by every tuple (Fig. 6 sweeps 0..10).
	if cfg.IFC && cfg.TagsPerLabel > 0 {
		owner := db.CreatePrincipal("dbt2")
		for i := 0; i < cfg.TagsPerLabel; i++ {
			t, err := db.CreateTag(owner, fmt.Sprintf("dbt2_tag_%d", i))
			if err != nil {
				return nil, err
			}
			b.tags = append(b.tags, t)
		}
	}

	if err := b.load(); err != nil {
		return nil, err
	}
	b.oIDs.Store(3000)
	return b, nil
}

// Session opens a worker session already contaminated with the
// benchmark tags, so every read passes confinement and every write
// lands at the k-tag label.
func (b *Bench) Session() (*ifdb.Session, error) {
	s := b.DB.NewSession(b.DB.Admin())
	for _, t := range b.tags {
		if err := s.AddSecrecy(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (b *Bench) load() error {
	s, err := b.Session()
	if err != nil {
		return err
	}
	cfg := b.Cfg
	rng := rand.New(rand.NewSource(42))

	if err := s.Begin(txn.SnapshotIsolation); err != nil {
		return err
	}
	for i := 1; i <= cfg.Items; i++ {
		if _, err := s.Exec(`INSERT INTO item VALUES ($1, $2, $3)`,
			ifdb.Int(int64(i)), ifdb.Text(fmt.Sprintf("item-%d", i)),
			ifdb.Float(1+rng.Float64()*99)); err != nil {
			return err
		}
	}
	if err := s.Commit(); err != nil {
		return err
	}

	for w := 1; w <= cfg.Warehouses; w++ {
		if err := s.Begin(txn.SnapshotIsolation); err != nil {
			return err
		}
		if _, err := s.Exec(`INSERT INTO warehouse VALUES ($1, $2, $3, 0.0)`,
			ifdb.Int(int64(w)), ifdb.Text(fmt.Sprintf("w%d", w)), ifdb.Float(rng.Float64()*0.2)); err != nil {
			return err
		}
		for d := 1; d <= cfg.Districts; d++ {
			if _, err := s.Exec(`INSERT INTO district VALUES ($1, $2, $3, 0.0, 3001)`,
				ifdb.Int(int64(w)), ifdb.Int(int64(d)), ifdb.Float(rng.Float64()*0.2)); err != nil {
				return err
			}
			for c := 1; c <= cfg.CustomersPer; c++ {
				if _, err := s.Exec(`INSERT INTO customer VALUES ($1, $2, $3, $4, 10.0)`,
					ifdb.Int(int64(w)), ifdb.Int(int64(d)), ifdb.Int(int64(c)),
					ifdb.Text(fmt.Sprintf("cust-%d-%d-%d", w, d, c))); err != nil {
					return err
				}
			}
		}
		for i := 1; i <= cfg.Items; i++ {
			if _, err := s.Exec(`INSERT INTO stock VALUES ($1, $2, $3, 0, 0)`,
				ifdb.Int(int64(w)), ifdb.Int(int64(i)), ifdb.Int(int64(10+rng.Intn(90)))); err != nil {
				return err
			}
		}
		if err := s.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// NewOrder runs one New-Order transaction for a random (w, d, c),
// retrying serialization failures as DBT-2 drivers do. It reports
// whether the transaction ultimately committed.
func (b *Bench) NewOrder(s *ifdb.Session, rng *rand.Rand) error {
	const maxRetries = 10
	var lastErr error
	for attempt := 0; attempt < maxRetries; attempt++ {
		err := b.newOrderOnce(s, rng)
		if err == nil {
			b.Committed.Add(1)
			return nil
		}
		if errors.Is(err, txn.ErrSerialization) {
			lastErr = err
			continue
		}
		b.Aborted.Add(1)
		return err
	}
	b.Aborted.Add(1)
	return lastErr
}

func (b *Bench) newOrderOnce(s *ifdb.Session, rng *rand.Rand) error {
	cfg := b.Cfg
	w := int64(1 + rng.Intn(cfg.Warehouses))
	d := int64(1 + rng.Intn(cfg.Districts))
	c := int64(1 + rng.Intn(cfg.CustomersPer))
	olCnt := 5 + rng.Intn(11) // 5..15 lines, per TPC-C

	if err := s.Begin(txn.SnapshotIsolation); err != nil {
		return err
	}
	abort := func(err error) error {
		if s.InTxn() {
			_ = s.Abort()
		}
		return err
	}

	row, ok, err := s.QueryRow(`SELECT w_tax FROM warehouse WHERE w_id = $1`, ifdb.Int(w))
	if err != nil || !ok {
		return abort(fmt.Errorf("dbt2: warehouse %d: %v", w, err))
	}
	wTax := row[0].Float()

	row, ok, err = s.QueryRow(`SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = $1 AND d_id = $2`,
		ifdb.Int(w), ifdb.Int(d))
	if err != nil || !ok {
		return abort(fmt.Errorf("dbt2: district %d/%d: %v", w, d, err))
	}
	dTax := row[0].Float()
	oID := row[1].Int()
	if _, err := s.Exec(`UPDATE district SET d_next_o_id = $3 WHERE d_w_id = $1 AND d_id = $2`,
		ifdb.Int(w), ifdb.Int(d), ifdb.Int(oID+1)); err != nil {
		return abort(err)
	}

	if _, ok, err = s.QueryRow(`SELECT c_balance FROM customer WHERE c_w_id = $1 AND c_d_id = $2 AND c_id = $3`,
		ifdb.Int(w), ifdb.Int(d), ifdb.Int(c)); err != nil || !ok {
		return abort(fmt.Errorf("dbt2: customer: %v", err))
	}

	if _, err := s.Exec(`INSERT INTO orders VALUES ($1, $2, $3, $4, $5, $6)`,
		ifdb.Int(w), ifdb.Int(d), ifdb.Int(oID), ifdb.Int(c),
		ifdb.Int(time.Now().Unix()), ifdb.Int(int64(olCnt))); err != nil {
		return abort(err)
	}
	if _, err := s.Exec(`INSERT INTO new_order VALUES ($1, $2, $3)`,
		ifdb.Int(w), ifdb.Int(d), ifdb.Int(oID)); err != nil {
		return abort(err)
	}

	total := 0.0
	for ol := 1; ol <= olCnt; ol++ {
		iID := int64(1 + rng.Intn(cfg.Items))
		qty := int64(1 + rng.Intn(10))

		row, ok, err := s.QueryRow(`SELECT i_price FROM item WHERE i_id = $1`, ifdb.Int(iID))
		if err != nil || !ok {
			return abort(fmt.Errorf("dbt2: item %d: %v", iID, err))
		}
		price := row[0].Float()

		row, ok, err = s.QueryRow(`SELECT s_quantity, s_ytd, s_order_cnt FROM stock WHERE s_w_id = $1 AND s_i_id = $2`,
			ifdb.Int(w), ifdb.Int(iID))
		if err != nil || !ok {
			return abort(fmt.Errorf("dbt2: stock %d/%d: %v", w, iID, err))
		}
		sq := row[0].Int()
		if sq-qty < 10 {
			sq += 91
		}
		if _, err := s.Exec(
			`UPDATE stock SET s_quantity = $3, s_ytd = $4, s_order_cnt = $5 WHERE s_w_id = $1 AND s_i_id = $2`,
			ifdb.Int(w), ifdb.Int(iID), ifdb.Int(sq-qty),
			ifdb.Int(row[1].Int()+qty), ifdb.Int(row[2].Int()+1)); err != nil {
			return abort(err)
		}
		amount := float64(qty) * price * (1 + wTax + dTax)
		total += amount
		if _, err := s.Exec(`INSERT INTO order_line VALUES ($1, $2, $3, $4, $5, $6, $7)`,
			ifdb.Int(w), ifdb.Int(d), ifdb.Int(oID), ifdb.Int(int64(ol)),
			ifdb.Int(iID), ifdb.Int(qty), ifdb.Float(amount)); err != nil {
			return abort(err)
		}
	}
	_ = total
	return s.Commit()
}

// RunSerial executes n New-Order transactions on a single worker and
// returns NOTPM. Serial measurement trades realism for stability: it
// removes scheduler and lock-contention variance, which on small or
// shared machines otherwise drowns the per-tag signal Fig. 6 is after.
func (b *Bench) RunSerial(n int) (notpm float64, err error) {
	s, err := b.Session()
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(99))
	// Warm up caches before timing.
	for i := 0; i < n/10+1; i++ {
		if err := b.NewOrder(s, rng); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := b.NewOrder(s, rng); err != nil {
			return 0, err
		}
	}
	return float64(n) / time.Since(start).Minutes(), nil
}

// CompareInterleaved measures cell's throughput relative to base by
// alternating small chunks of transactions between the two loaded
// databases. At ~1 s chunk granularity, host-speed drift (severe on
// shared machines) hits both sides equally, so the ratio isolates the
// configuration difference — the same technique the sensor experiment
// uses.
func CompareInterleaved(base, cell *Bench, chunks, txnsPerChunk int) (ratio float64, cellNOTPM float64, err error) {
	bs, err := base.Session()
	if err != nil {
		return 0, 0, err
	}
	cs, err := cell.Session()
	if err != nil {
		return 0, 0, err
	}
	baseRng := rand.New(rand.NewSource(5))
	cellRng := rand.New(rand.NewSource(5))
	runChunk := func(b *Bench, s *ifdb.Session, rng *rand.Rand) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < txnsPerChunk; i++ {
			if err := b.NewOrder(s, rng); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	// Warm both sides.
	if _, err := runChunk(base, bs, baseRng); err != nil {
		return 0, 0, err
	}
	if _, err := runChunk(cell, cs, cellRng); err != nil {
		return 0, 0, err
	}
	var baseTime, cellTime time.Duration
	for c := 0; c < chunks; c++ {
		// Alternate which side goes first so asymmetric effects (GC
		// pauses triggered by the other side's allocations) cancel.
		order := [2]bool{c%2 == 0, c%2 != 0}
		for _, baseFirst := range order {
			if baseFirst {
				d, err := runChunk(base, bs, baseRng)
				if err != nil {
					return 0, 0, err
				}
				baseTime += d
			} else {
				d, err := runChunk(cell, cs, cellRng)
				if err != nil {
					return 0, 0, err
				}
				cellTime += d
			}
		}
	}
	totalTxns := float64(chunks * txnsPerChunk)
	return baseTime.Seconds() / cellTime.Seconds(), totalTxns / cellTime.Minutes(), nil
}

// Run drives workers concurrent New-Order loops for the given
// duration and returns NOTPM.
func (b *Bench) Run(workers int, d time.Duration) (notpm float64, err error) {
	b.Committed.Store(0)
	b.Aborted.Store(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s, serr := b.Session()
			if serr != nil {
				errCh <- serr
				return
			}
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if nerr := b.NewOrder(s, rng); nerr != nil && !errors.Is(nerr, txn.ErrSerialization) {
					errCh <- nerr
					return
				}
			}
		}(int64(i) + 7)
	}
	time.Sleep(d)
	close(stop)
	wg.Wait()
	select {
	case err = <-errCh:
		return 0, err
	default:
	}
	mins := d.Minutes()
	return float64(b.Committed.Load()) / mins, nil
}
