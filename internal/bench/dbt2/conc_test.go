package dbt2

import (
	"testing"
	"time"
)

func TestConcurrentRun(t *testing.T) {
	cfg := Config{Warehouses: 2, Items: 200, CustomersPer: 10, Districts: 4, IFC: true, TagsPerLabel: 1}
	b, err := Setup(cfg)
	if err != nil {
		t.Fatal(err)
	}
	notpm, err := b.Run(8, 2*time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if notpm <= 0 {
		t.Fatal("no throughput")
	}
	t.Logf("NOTPM %.0f committed %d aborted %d", notpm, b.Committed.Load(), b.Aborted.Load())
}
