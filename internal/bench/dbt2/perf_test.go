package dbt2

import (
	"math/rand"
	"testing"
	"time"
)

func TestPerfQuick(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"baseline", Config{Warehouses: 2, Items: 500, CustomersPer: 10, Districts: 10}},
		{"ifdb-k1", Config{Warehouses: 2, Items: 500, CustomersPer: 10, Districts: 10, IFC: true, TagsPerLabel: 1}},
		{"ifdb-k10", Config{Warehouses: 2, Items: 500, CustomersPer: 10, Districts: 10, IFC: true, TagsPerLabel: 10}},
		{"disk-k1", Config{Warehouses: 2, Items: 500, CustomersPer: 10, Districts: 10, IFC: true, TagsPerLabel: 1, OnDisk: true, BufferPoolPages: 32}},
	} {
		b, err := Setup(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := b.Session()
		rng := rand.New(rand.NewSource(1))
		start := time.Now()
		n := 300
		for i := 0; i < n; i++ {
			if err := b.NewOrder(s, rng); err != nil {
				t.Fatal(err)
			}
		}
		el := time.Since(start)
		t.Logf("%s: %d txns in %v = %.0f tx/s", tc.name, n, el, float64(n)/el.Seconds())
	}
}
