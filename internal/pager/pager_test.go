package pager

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

func irow(vals ...int64) []types.Value {
	out := make([]types.Value, len(vals))
	for i, v := range vals {
		out[i] = types.NewInt(v)
	}
	return out
}

func TestPageInsertRecordTombstoneCompact(t *testing.T) {
	p := newPage()
	free0 := p.freeSpace()
	s1, err := p.insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if string(p.record(s1)) != "hello" || string(p.record(s2)) != "world!" {
		t.Fatal("records corrupted")
	}
	if p.record(99) != nil {
		t.Fatal("bogus slot returned data")
	}
	p.tombstone(s1)
	if p.record(s1) != nil {
		t.Fatal("tombstoned record visible")
	}
	p.compact()
	if string(p.record(s2)) != "world!" {
		t.Fatal("compact corrupted survivor")
	}
	if p.freeSpace() <= free0-len("hello")-len("world!")-2*slotSize {
		t.Fatalf("compact did not reclaim space: %d", p.freeSpace())
	}
	// Fill until overflow; insert must refuse rather than corrupt.
	big := make([]byte, 1000)
	for {
		if _, err := p.insert(big); err != nil {
			break
		}
	}
}

func TestBufferPoolEvictionAndWriteBack(t *testing.T) {
	store := NewMemStore()
	bp := NewBufferPool(store, 2)
	// Touch three pages; capacity 2 forces one eviction.
	for i := PageID(0); i < 3; i++ {
		err := bp.WithPageDirty(i, func(p page) error {
			if _, err := p.insert([]byte{byte(i)}); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if bp.Misses != 3 {
		t.Fatalf("misses = %d", bp.Misses)
	}
	if store.Writes == 0 {
		t.Fatal("eviction did not write back dirty page")
	}
	// Page 0 was evicted; reading it back must hit the store.
	err := bp.WithPage(0, func(p page) error {
		if p.nSlots() != 1 || p.record(0)[0] != 0 {
			return errors.New("page 0 lost its record across eviction")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := bp.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolIOFaultPropagates(t *testing.T) {
	store := NewMemStore()
	store.OnIO = func(op string, id PageID) error {
		if op == "read" && id == 1 {
			return errors.New("injected read fault")
		}
		return nil
	}
	bp := NewBufferPool(store, 4)
	if err := bp.WithPage(1, func(p page) error { return nil }); err == nil {
		t.Fatal("read fault swallowed")
	}
	// Write fault on eviction.
	store.OnIO = func(op string, id PageID) error {
		if op == "write" {
			return errors.New("injected write fault")
		}
		return nil
	}
	bp2 := NewBufferPool(store, 1)
	if err := bp2.WithPageDirty(0, func(p page) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := bp2.WithPage(2, func(p page) error { return nil }); err == nil {
		t.Fatal("evict write fault swallowed")
	}
}

func TestPagedHeapBasics(t *testing.T) {
	h := NewPagedHeap(NewMemStore(), 8)
	tv := storage.TupleVersion{Row: irow(1, 2), Label: label.New(7), Xmin: 3}
	tid, err := h.Insert(tv)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := h.Get(tid)
	if !ok || !got.Label.Equal(label.New(7)) || got.Xmin != 3 || got.Row[1].Int() != 2 {
		t.Fatalf("Get: %+v ok=%v", got, ok)
	}
	if !h.SetXmax(tid, 9) {
		t.Fatal("SetXmax")
	}
	if h.SetXmax(tid, 10) {
		t.Fatal("conflicting SetXmax")
	}
	h.ClearXmax(tid, 9)
	if got, _ := h.Get(tid); got.Xmax != storage.InvalidXID {
		t.Fatal("ClearXmax")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	if h.ApproxBytes() <= 0 || h.NPages() != 1 {
		t.Fatal("accounting")
	}
}

func TestPagedHeapSpillsAcrossPages(t *testing.T) {
	h := NewPagedHeap(NewMemStore(), 4)
	long := types.NewText(string(make([]byte, 1024)))
	var tids []storage.TID
	for i := 0; i < 64; i++ {
		tid, err := h.Insert(storage.TupleVersion{Row: []types.Value{types.NewInt(int64(i)), long}, Xmin: 1})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if h.NPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", h.NPages())
	}
	// All retrievable, in scan order, despite pool smaller than pages.
	i := 0
	h.Scan(func(tid storage.TID, tv *storage.TupleVersion) bool {
		if tv.Row[0].Int() != int64(i) {
			t.Fatalf("scan order broke at %d: %v", i, tv.Row[0])
		}
		i++
		return true
	})
	if i != 64 {
		t.Fatalf("scanned %d", i)
	}
	for i, tid := range tids {
		got, ok := h.Get(tid)
		if !ok || got.Row[0].Int() != int64(i) {
			t.Fatalf("Get(%d) failed", i)
		}
	}
}

func TestPagedHeapVacuumCompacts(t *testing.T) {
	h := NewPagedHeap(NewMemStore(), 4)
	for i := 0; i < 100; i++ {
		tid, err := h.Insert(storage.TupleVersion{Row: irow(int64(i)), Xmin: 1})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			h.SetXmax(tid, 2)
		}
	}
	n := h.Vacuum(func(tv *storage.TupleVersion) bool { return tv.Xmax != storage.InvalidXID })
	if n != 50 {
		t.Fatalf("vacuumed %d", n)
	}
	if h.Len() != 50 {
		t.Fatalf("Len = %d", h.Len())
	}
	count := 0
	h.Scan(func(_ storage.TID, tv *storage.TupleVersion) bool {
		if tv.Row[0].Int()%2 == 0 {
			t.Fatal("vacuumed row surfaced")
		}
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("scan count %d", count)
	}
}

func TestPagedHeapOversizeTuple(t *testing.T) {
	h := NewPagedHeap(NewMemStore(), 2)
	huge := types.NewText(string(make([]byte, PageSize)))
	if _, err := h.Insert(storage.TupleVersion{Row: []types.Value{huge}}); err == nil {
		t.Fatal("oversize tuple accepted")
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	h := NewPagedHeap(fs, 4)
	var tids []storage.TID
	for i := 0; i < 10; i++ {
		tid, err := h.Insert(storage.TupleVersion{Row: irow(int64(i)), Xmin: 1})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: data must still be there (same TIDs).
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	h2 := NewPagedHeap(fs2, 4)
	h2.nPages = 1 // heap-level metadata is rebuilt by the catalog; emulate
	for i, tid := range tids {
		got, ok := h2.Get(tid)
		if !ok || got.Row[0].Int() != int64(i) {
			t.Fatalf("row %d lost across reopen", i)
		}
	}
}

// Property: a random interleaving of inserts and deletes matches a
// reference map, for both heap backends.
func TestQuickHeapMatchesReference(t *testing.T) {
	run := func(seed int64, mk func() storage.Heap) bool {
		r := rand.New(rand.NewSource(seed))
		h := mk()
		ref := make(map[storage.TID]int64)
		for op := 0; op < 300; op++ {
			if r.Intn(3) > 0 || len(ref) == 0 {
				v := r.Int63n(1000)
				tid, err := h.Insert(storage.TupleVersion{Row: irow(v), Xmin: 1})
				if err != nil {
					return false
				}
				ref[tid] = v
			} else {
				for tid := range ref {
					h.SetXmax(tid, 2)
					delete(ref, tid)
					break
				}
			}
		}
		h.Vacuum(func(tv *storage.TupleVersion) bool { return tv.Xmax != storage.InvalidXID })
		if h.Len() != len(ref) {
			return false
		}
		for tid, v := range ref {
			got, ok := h.Get(tid)
			if !ok || got.Row[0].Int() != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(seed int64) bool {
		return run(seed, func() storage.Heap { return storage.NewMemHeap() }) &&
			run(seed, func() storage.Heap { return NewPagedHeap(NewMemStore(), 3) })
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreCounters(t *testing.T) {
	s := NewMemStore()
	buf := make([]byte, PageSize)
	if err := s.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("counters: %d reads %d writes", s.Reads, s.Writes)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_ = fmt.Sprintf // keep fmt for debug helpers
}
