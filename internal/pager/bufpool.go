package pager

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageStore is the I/O boundary under the buffer pool. The production
// implementation is FileStore; tests substitute an in-memory store
// with fault injection.
type PageStore interface {
	// ReadPage fills buf (PageSize bytes) with page id's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id's contents.
	WritePage(id PageID, buf []byte) error
	// Sync flushes to stable storage.
	Sync() error
	Close() error
}

// SizedStore is implemented by stores that know how many pages they
// already hold. The paged heap uses it to rediscover its page count
// when a heap file is reopened after a restart.
type SizedStore interface {
	NumPages() (int, error)
}

// FileStore stores pages in a single flat file.
type FileStore struct {
	f *os.File
}

// OpenFileStore opens (creating if necessary) the heap file at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	return &FileStore{f: f}, nil
}

// NumPages reports how many pages the file currently holds.
func (s *FileStore) NumPages() (int, error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return int((st.Size() + PageSize - 1) / PageSize), nil
}

// ReadPage reads page id into buf, verifying its checksum. A page
// beyond EOF or an all-zero page (a hole left by out-of-order flushes)
// reads as a fresh page; anything else that fails verification is
// disk corruption and surfaces as a loud error, never as garbage
// tuples.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	_, err := s.f.ReadAt(buf, int64(id)*PageSize)
	if err == io.EOF {
		copy(buf, newPage())
		return nil
	}
	if err != nil {
		return err
	}
	p := page(buf)
	if p.isZero() {
		copy(buf, newPage())
		return nil
	}
	if err := p.verifyChecksum(); err != nil {
		return fmt.Errorf("%w (page %d of %s)", err, id, s.f.Name())
	}
	return nil
}

// WritePage stamps buf's checksum and writes it as page id.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	page(buf).stampChecksum()
	_, err := s.f.WriteAt(buf, int64(id)*PageSize)
	return err
}

// Sync flushes the file.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close closes the file.
func (s *FileStore) Close() error { return s.f.Close() }

// MemStore is an in-memory PageStore used by tests and by "simulated
// disk" benchmark configurations where real disk latency would drown
// the signal. An optional per-I/O hook injects latency or faults.
type MemStore struct {
	mu    sync.Mutex
	pages map[PageID][]byte
	// OnIO, if set, runs before every read/write with the operation
	// name; it may return an error to inject a fault.
	OnIO func(op string, id PageID) error
	// Reads and Writes count I/O operations, for cache-behavior tests.
	Reads, Writes int64
}

// NewMemStore returns an empty in-memory page store.
func NewMemStore() *MemStore { return &MemStore{pages: make(map[PageID][]byte)} }

// ReadPage implements PageStore.
func (s *MemStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	hook := s.OnIO
	s.Reads++
	p, ok := s.pages[id]
	if ok {
		copy(buf, p)
	} else {
		copy(buf, newPage())
	}
	s.mu.Unlock()
	if hook != nil {
		return hook("read", id)
	}
	return nil
}

// WritePage implements PageStore.
func (s *MemStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	hook := s.OnIO
	s.Writes++
	cp := make([]byte, PageSize)
	copy(cp, buf)
	s.pages[id] = cp
	s.mu.Unlock()
	if hook != nil {
		return hook("write", id)
	}
	return nil
}

// Sync implements PageStore.
func (s *MemStore) Sync() error { return nil }

// Close implements PageStore.
func (s *MemStore) Close() error { return nil }

// BufferPool caches pages with LRU eviction and write-back.
//
// A single mutex guards the pool. Callers access page contents only
// through With*, which runs the callback with the frame held; the
// callback must not re-enter the pool.
type BufferPool struct {
	mu       sync.Mutex
	store    PageStore
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // front = most recently used; values are *frame

	// Hits and Misses count lookups, for cache tests and the bench
	// harness's I/O accounting.
	Hits, Misses int64
}

type frame struct {
	id    PageID
	data  page
	dirty bool
	elem  *list.Element
}

// NewBufferPool creates a pool holding at most capacity pages (min 1).
func NewBufferPool(store PageStore, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}
}

// load pins the page into a frame, evicting if needed. Caller holds mu.
func (bp *BufferPool) load(id PageID) (*frame, error) {
	if fr, ok := bp.frames[id]; ok {
		bp.lru.MoveToFront(fr.elem)
		bp.Hits++
		return fr, nil
	}
	bp.Misses++
	for len(bp.frames) >= bp.capacity {
		// Evict least recently used.
		tail := bp.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*frame)
		if victim.dirty {
			if err := bp.store.WritePage(victim.id, victim.data); err != nil {
				return nil, fmt.Errorf("pager: evict page %d: %w", victim.id, err)
			}
		}
		bp.lru.Remove(tail)
		delete(bp.frames, victim.id)
	}
	fr := &frame{id: id, data: make(page, PageSize)}
	if err := bp.store.ReadPage(id, fr.data); err != nil {
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	fr.elem = bp.lru.PushFront(fr)
	bp.frames[id] = fr
	return fr, nil
}

// WithPage runs fn with read access to page id.
func (bp *BufferPool) WithPage(id PageID, fn func(p page) error) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.load(id)
	if err != nil {
		return err
	}
	return fn(fr.data)
}

// WithPageDirty runs fn with write access to page id and marks it dirty.
func (bp *BufferPool) WithPageDirty(id PageID, fn func(p page) error) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.load(id)
	if err != nil {
		return err
	}
	fr.dirty = true
	return fn(fr.data)
}

// FlushAll writes back every dirty frame and syncs the store.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.store.WritePage(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return bp.store.Sync()
}

// Close flushes and closes the underlying store.
func (bp *BufferPool) Close() error {
	if err := bp.FlushAll(); err != nil {
		return err
	}
	return bp.store.Close()
}

// CloseDiscard closes the store without writing dirty pages back
// (the caller is deleting the backing file).
func (bp *BufferPool) CloseDiscard() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.frames = make(map[PageID]*frame)
	bp.lru.Init()
	return bp.store.Close()
}
