// Package pager implements the on-disk heap backend: fixed-size
// slotted pages stored in a file, cached by an LRU buffer pool.
//
// The paper's Fig. 6 contrasts an in-memory DBT-2 database with a
// disk-bound one; the per-tag label overhead is larger on disk because
// bigger tuples mean fewer tuples per page and more I/O (§8.3). This
// backend reproduces that mechanism: labels are stored inline in each
// tuple record (1 count byte + 4 bytes per tag, the same cost the
// paper reports), so adding tags genuinely increases page consumption
// and buffer-pool pressure.
package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PageSize is the size of every page in bytes (PostgreSQL's default).
const PageSize = 8192

// PageID numbers pages within a heap file, starting at 0.
type PageID uint32

// Page layout:
//
//	offset 0:  uint16 nslots
//	offset 2:  uint16 freeLow  — end of slot array (grows up)
//	offset 4:  uint16 freeHigh — start of tuple data (grows down)
//	offset 6:  uint32 CRC-32C  — stamped on flush, verified on read
//	offset 10: slot array, 4 bytes per slot: {uint16 off, uint16 len}
//	...
//	freeHigh..PageSize: tuple records
//
// The checksum is a property of the page *on disk*: it is stamped by
// the file store as the page is written and verified as it is read, so
// silent media corruption surfaces as a loud error instead of garbage
// tuples. In memory the field is ignored. An all-zero page reads as a
// fresh page (a hole left by out-of-order flushes), as in PostgreSQL.
//
// A slot with len == 0 is a tombstone (vacuumed); its slot number is
// never reused so TIDs stay stable.
const (
	pageHeaderSize = 10
	checksumOff    = 6
	slotSize       = 4
)

type page []byte

func newPage() page {
	p := make(page, PageSize)
	p.setNSlots(0)
	p.setFreeLow(pageHeaderSize)
	p.setFreeHigh(PageSize)
	return p
}

func (p page) nSlots() int      { return int(binary.LittleEndian.Uint16(p[0:])) }
func (p page) setNSlots(n int)  { binary.LittleEndian.PutUint16(p[0:], uint16(n)) }
func (p page) freeLow() int     { return int(binary.LittleEndian.Uint16(p[2:])) }
func (p page) setFreeLow(n int) { binary.LittleEndian.PutUint16(p[2:], uint16(n)) }
func (p page) freeHigh() int    { return int(binary.LittleEndian.Uint16(p[4:])) }
func (p page) setFreeHigh(n int) {
	binary.LittleEndian.PutUint16(p[4:], uint16(n))
}

// checksum computes the page's CRC-32C with the checksum field itself
// excluded.
func (p page) checksum() uint32 {
	c := crc32.Update(0, castagnoli, p[:checksumOff])
	return crc32.Update(c, castagnoli, p[checksumOff+4:])
}

// stampChecksum writes the current checksum into the header.
func (p page) stampChecksum() {
	binary.LittleEndian.PutUint32(p[checksumOff:], p.checksum())
}

// verifyChecksum checks the stored checksum against the contents.
func (p page) verifyChecksum() error {
	want := binary.LittleEndian.Uint32(p[checksumOff:])
	if got := p.checksum(); got != want {
		return fmt.Errorf("pager: page checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	return nil
}

// isZero reports whether the page is entirely zero bytes (a hole).
func (p page) isZero() bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func (p page) slot(i int) (off, ln int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p[base:])), int(binary.LittleEndian.Uint16(p[base+2:]))
}

func (p page) setSlot(i, off, ln int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p[base:], uint16(off))
	binary.LittleEndian.PutUint16(p[base+2:], uint16(ln))
}

// freeSpace returns bytes available for one more tuple (including its
// slot entry).
func (p page) freeSpace() int {
	free := p.freeHigh() - p.freeLow() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// insert places a record and returns its slot number.
func (p page) insert(rec []byte) (int, error) {
	if len(rec) > p.freeSpace() {
		return 0, fmt.Errorf("pager: record of %d bytes does not fit (%d free)", len(rec), p.freeSpace())
	}
	slotNo := p.nSlots()
	newHigh := p.freeHigh() - len(rec)
	copy(p[newHigh:], rec)
	p.setFreeHigh(newHigh)
	p.setSlot(slotNo, newHigh, len(rec))
	p.setNSlots(slotNo + 1)
	p.setFreeLow(pageHeaderSize + (slotNo+1)*slotSize)
	return slotNo, nil
}

// record returns the bytes of slot i (nil for tombstones).
func (p page) record(i int) []byte {
	if i >= p.nSlots() {
		return nil
	}
	off, ln := p.slot(i)
	if ln == 0 {
		return nil
	}
	return p[off : off+ln]
}

// restoreAt places a record at exactly slot during crash recovery,
// creating tombstones for any gap (slots of inserts replay skipped).
// An already-allocated slot — occupied or tombstoned — is left alone:
// the page reached disk after that insert (or after its vacuum), so
// the log record's effect is already present.
func (p page) restoreAt(slot int, rec []byte) (bool, error) {
	if slot < p.nSlots() {
		return false, nil
	}
	need := (slot + 1 - p.nSlots()) * slotSize
	newHigh := p.freeHigh() - len(rec)
	if pageHeaderSize+(slot+1)*slotSize > newHigh {
		return false, fmt.Errorf("pager: restore of %d bytes at slot %d does not fit (%d slots, %d free)",
			len(rec), slot, p.nSlots(), p.freeSpace()+slotSize-need)
	}
	for i := p.nSlots(); i < slot; i++ {
		p.setSlot(i, 0, 0)
	}
	copy(p[newHigh:], rec)
	p.setFreeHigh(newHigh)
	p.setSlot(slot, newHigh, len(rec))
	p.setNSlots(slot + 1)
	p.setFreeLow(pageHeaderSize + (slot+1)*slotSize)
	return true, nil
}

// tombstone marks slot i vacuumed. The space is reclaimed by compact.
func (p page) tombstone(i int) {
	if i < p.nSlots() {
		p.setSlot(i, 0, 0)
	}
}

// compact rewrites live records contiguously at the high end,
// recovering space from tombstoned slots. Slot numbers are preserved.
func (p page) compact() {
	type rec struct {
		slot int
		data []byte
	}
	var live []rec
	for i := 0; i < p.nSlots(); i++ {
		if r := p.record(i); r != nil {
			cp := make([]byte, len(r))
			copy(cp, r)
			live = append(live, rec{i, cp})
		}
	}
	high := PageSize
	for _, r := range live {
		high -= len(r.data)
		copy(p[high:], r.data)
		p.setSlot(r.slot, high, len(r.data))
	}
	p.setFreeHigh(high)
}
