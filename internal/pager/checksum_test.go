package pager

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ifdb/internal/storage"
	"ifdb/internal/types"
)

func fileHeapWithRows(t *testing.T, path string, rows int) {
	t.Helper()
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	h := NewPagedHeap(fs, 4)
	for i := 0; i < rows; i++ {
		_, err := h.Insert(storage.TupleVersion{
			Xmin: 1,
			Row:  []types.Value{types.NewInt(int64(i)), types.NewText(strings.Repeat("x", 100))},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(false); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumDetectsCorruption flips bytes inside a flushed heap page
// on disk and asserts the read fails loudly instead of decoding
// garbage.
func TestChecksumDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	fileHeapWithRows(t, path, 20)

	// Corrupt tuple bytes in the middle of page 0 (past the header so
	// the page is not mistaken for a hole).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := PageSize - 64; i < PageSize-56; i++ {
		raw[i] ^= 0xFF
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	h := NewPagedHeap(fs, 4)
	_, found := h.Get(0)
	if found {
		t.Fatal("Get on a corrupt page returned a tuple instead of failing")
	}
	err = h.pool.WithPage(0, func(p page) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("want loud checksum mismatch, got %v", err)
	}
}

// TestChecksumRoundTrip asserts a clean flush/reopen cycle verifies.
func TestChecksumRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	fileHeapWithRows(t, path, 200)

	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	h := NewPagedHeap(fs, 4)
	if err := h.Recount(); err != nil {
		t.Fatalf("recount after reopen: %v", err)
	}
	if h.Len() != 200 {
		t.Fatalf("want 200 live tuples after reopen, got %d", h.Len())
	}
	if err := h.Close(false); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumZeroPageIsFresh: a hole (all-zero page) left by
// out-of-order flushes reads as a fresh empty page, not corruption.
func TestChecksumZeroPageIsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.heap")
	if err := os.WriteFile(path, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	buf := make([]byte, PageSize)
	if err := fs.ReadPage(0, buf); err != nil {
		t.Fatalf("zero page should read as fresh, got %v", err)
	}
	if !bytes.Equal(buf, newPage()) {
		t.Fatal("zero page did not read as a fresh page")
	}
}

// TestWritePagesToStampsChecksums: pages serialized for a basebackup
// carry valid checksums, so a follower's file store accepts them.
func TestWritePagesToStampsChecksums(t *testing.T) {
	path := filepath.Join(t.TempDir(), "src.heap")
	fileHeapWithRows(t, path, 50)
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	h := NewPagedHeap(fs, 4)
	var out bytes.Buffer
	if err := h.WritePagesTo(&out); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(false); err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(t.TempDir(), "dst.heap")
	if err := os.WriteFile(dst, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileStore(dst)
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewPagedHeap(fs2, 4)
	if err := h2.Recount(); err != nil {
		t.Fatalf("basebackup pages failed verification: %v", err)
	}
	if h2.Len() != 50 {
		t.Fatalf("want 50 tuples in basebackup copy, got %d", h2.Len())
	}
	if err := h2.Close(false); err != nil {
		t.Fatal(err)
	}
}
