package pager

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"ifdb/internal/label"
	"ifdb/internal/storage"
	"ifdb/internal/types"
)

// PagedHeap is the on-disk storage.Heap backend.
//
// Tuple record layout:
//
//	xmin   uint64
//	xmax   uint64
//	label  1 count byte + 4 bytes per tag   (paper §8.3 layout)
//	row    uvarint column count + encoded values
//
// TIDs pack (page << 16 | slot).
type PagedHeap struct {
	mu   sync.RWMutex // serializes heap-level structure changes
	pool *BufferPool

	nPages   int
	lastPage PageID // insertion target
	live     int
	bytes    int64
}

var _ storage.Heap = (*PagedHeap)(nil)

// NewPagedHeap creates a heap over the given store with a buffer pool
// of poolPages pages. If the store already holds pages (a heap file
// reopened after restart), the heap resumes from them; call Recount
// after recovery to rebuild the live/bytes counters.
func NewPagedHeap(store PageStore, poolPages int) *PagedHeap {
	h := &PagedHeap{pool: NewBufferPool(store, poolPages)}
	if sized, ok := store.(SizedStore); ok {
		if n, err := sized.NumPages(); err == nil && n > 0 {
			h.nPages = n
			h.lastPage = PageID(n - 1)
		}
	}
	return h
}

// Pool exposes the buffer pool for cache accounting in benchmarks.
func (h *PagedHeap) Pool() *BufferPool { return h.pool }

func packTID(p PageID, slot int) storage.TID {
	return storage.TID(uint64(p)<<16 | uint64(uint16(slot)))
}

func unpackTID(t storage.TID) (PageID, int) {
	return PageID(uint64(t) >> 16), int(uint64(t) & 0xFFFF)
}

func encodeRecord(tv storage.TupleVersion) ([]byte, error) {
	buf := make([]byte, 16, 64)
	binary.LittleEndian.PutUint64(buf[0:], uint64(tv.Xmin))
	binary.LittleEndian.PutUint64(buf[8:], uint64(tv.Xmax))
	var err error
	buf, err = label.AppendEncode(buf, tv.Label)
	if err != nil {
		return nil, err
	}
	buf, err = label.AppendEncode(buf, tv.ILabel)
	if err != nil {
		return nil, err
	}
	return types.EncodeRow(buf, tv.Row)
}

func decodeRecord(rec []byte) (storage.TupleVersion, error) {
	var tv storage.TupleVersion
	if len(rec) < 18 {
		return tv, fmt.Errorf("pager: truncated record (%d bytes)", len(rec))
	}
	tv.Xmin = storage.XID(binary.LittleEndian.Uint64(rec[0:]))
	tv.Xmax = storage.XID(binary.LittleEndian.Uint64(rec[8:]))
	off := 16
	l, n, err := label.Decode(rec[off:])
	if err != nil {
		return tv, err
	}
	tv.Label = l
	off += n
	il, n, err := label.Decode(rec[off:])
	if err != nil {
		return tv, err
	}
	tv.ILabel = il
	off += n
	row, _, err := types.DecodeRow(rec[off:])
	if err != nil {
		return tv, err
	}
	tv.Row = row
	return tv, nil
}

// Insert appends a new version.
func (h *PagedHeap) Insert(tv storage.TupleVersion) (storage.TID, error) {
	rec, err := encodeRecord(tv)
	if err != nil {
		return storage.InvalidTID, err
	}
	if len(rec) > PageSize-pageHeaderSize-slotSize {
		return storage.InvalidTID, fmt.Errorf("pager: tuple of %d bytes exceeds page capacity", len(rec))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.nPages == 0 {
		h.nPages = 1
		h.lastPage = 0
	}
	var tid storage.TID
	tryInsert := func(pid PageID) (bool, error) {
		var inserted bool
		err := h.pool.WithPageDirty(pid, func(p page) error {
			if p.freeSpace() < len(rec) {
				return nil
			}
			slot, err := p.insert(rec)
			if err != nil {
				return err
			}
			tid = packTID(pid, slot)
			inserted = true
			return nil
		})
		return inserted, err
	}
	ok, err := tryInsert(h.lastPage)
	if err != nil {
		return storage.InvalidTID, err
	}
	if !ok {
		h.lastPage = PageID(h.nPages)
		h.nPages++
		ok, err = tryInsert(h.lastPage)
		if err != nil {
			return storage.InvalidTID, err
		}
		if !ok {
			return storage.InvalidTID, fmt.Errorf("pager: fresh page rejected %d-byte tuple", len(rec))
		}
	}
	h.live++
	h.bytes += int64(len(rec))
	return tid, nil
}

// Get fetches the version at tid.
func (h *PagedHeap) Get(tid storage.TID) (storage.TupleVersion, bool) {
	pid, slot := unpackTID(tid)
	h.mu.RLock()
	defer h.mu.RUnlock()
	if int(pid) >= h.nPages {
		return storage.TupleVersion{}, false
	}
	var tv storage.TupleVersion
	found := false
	_ = h.pool.WithPage(pid, func(p page) error {
		rec := p.record(slot)
		if rec == nil {
			return nil
		}
		v, err := decodeRecord(rec)
		if err != nil {
			return err
		}
		tv, found = v, true
		return nil
	})
	return tv, found
}

// SetXmax stamps a delete, failing on conflict with another live stamp.
func (h *PagedHeap) SetXmax(tid storage.TID, xid storage.XID) bool {
	pid, slot := unpackTID(tid)
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(pid) >= h.nPages {
		return false
	}
	ok := false
	_ = h.pool.WithPageDirty(pid, func(p page) error {
		rec := p.record(slot)
		if rec == nil {
			return nil
		}
		cur := storage.XID(binary.LittleEndian.Uint64(rec[8:]))
		if cur != storage.InvalidXID && cur != xid {
			return nil
		}
		binary.LittleEndian.PutUint64(rec[8:], uint64(xid))
		ok = true
		return nil
	})
	return ok
}

// ClearXmax rolls back a delete stamp.
func (h *PagedHeap) ClearXmax(tid storage.TID, xid storage.XID) {
	pid, slot := unpackTID(tid)
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(pid) >= h.nPages {
		return
	}
	_ = h.pool.WithPageDirty(pid, func(p page) error {
		rec := p.record(slot)
		if rec == nil {
			return nil
		}
		if storage.XID(binary.LittleEndian.Uint64(rec[8:])) == xid {
			binary.LittleEndian.PutUint64(rec[8:], 0)
		}
		return nil
	})
}

// Scan visits every version in TID order.
//
// To keep lock scopes small and avoid holding buffer frames across the
// callback, each page's live records are decoded into a batch first.
func (h *PagedHeap) Scan(fn func(tid storage.TID, tv *storage.TupleVersion) bool) {
	h.mu.RLock()
	n := h.nPages
	h.mu.RUnlock()
	type item struct {
		tid storage.TID
		tv  storage.TupleVersion
	}
	for pid := PageID(0); int(pid) < n; pid++ {
		var batch []item
		_ = h.pool.WithPage(pid, func(p page) error {
			for s := 0; s < p.nSlots(); s++ {
				rec := p.record(s)
				if rec == nil {
					continue
				}
				tv, err := decodeRecord(rec)
				if err != nil {
					return err
				}
				batch = append(batch, item{packTID(pid, s), tv})
			}
			return nil
		})
		for i := range batch {
			if !fn(batch[i].tid, &batch[i].tv) {
				return
			}
		}
	}
}

// ScanFrom implements storage.BatchScanner: a resumable Scan that
// returns after max visits, rounded up to a whole page so the resume
// position is always a page boundary (start's slot bits are ignored
// past the first call because batches end at page edges).
func (h *PagedHeap) ScanFrom(start storage.TID, max int, fn func(tid storage.TID, tv *storage.TupleVersion) bool) (next storage.TID, more bool) {
	h.mu.RLock()
	n := h.nPages
	h.mu.RUnlock()
	pid, slot0 := unpackTID(start)
	type item struct {
		tid storage.TID
		tv  storage.TupleVersion
	}
	visited := 0
	for ; int(pid) < n; pid++ {
		var batch []item
		_ = h.pool.WithPage(pid, func(p page) error {
			for s := 0; s < p.nSlots(); s++ {
				if pid == PageID(start>>16) && s < slot0 {
					continue
				}
				rec := p.record(s)
				if rec == nil {
					continue
				}
				tv, err := decodeRecord(rec)
				if err != nil {
					return err
				}
				batch = append(batch, item{packTID(pid, s), tv})
			}
			return nil
		})
		for i := range batch {
			visited++
			if !fn(batch[i].tid, &batch[i].tv) {
				return batch[i].tid + 1, true
			}
		}
		if visited >= max {
			return packTID(pid+1, 0), int(pid+1) < n
		}
	}
	return packTID(PageID(n), 0), false
}

// Vacuum tombstones dead versions and compacts touched pages.
func (h *PagedHeap) Vacuum(dead func(tv *storage.TupleVersion) bool) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	reclaimed := 0
	for pid := PageID(0); int(pid) < h.nPages; pid++ {
		_ = h.pool.WithPageDirty(pid, func(p page) error {
			touched := false
			for s := 0; s < p.nSlots(); s++ {
				rec := p.record(s)
				if rec == nil {
					continue
				}
				tv, err := decodeRecord(rec)
				if err != nil {
					return err
				}
				if dead(&tv) {
					h.bytes -= int64(len(rec))
					p.tombstone(s)
					h.live--
					reclaimed++
					touched = true
				}
			}
			if touched {
				p.compact()
			}
			return nil
		})
	}
	return reclaimed
}

// Len returns the number of resident versions.
func (h *PagedHeap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.live
}

// ApproxBytes returns resident tuple bytes (excluding page overhead).
func (h *PagedHeap) ApproxBytes() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.bytes
}

// RestoreAt implements storage.RecoverableHeap: it re-places a logged
// version at its exact (page, slot) during replay. Slots the flushed
// page already allocated are left untouched (placed=false) — the
// record's effect reached disk before the crash, or was vacuumed.
func (h *PagedHeap) RestoreAt(tid storage.TID, tv storage.TupleVersion) (bool, error) {
	rec, err := encodeRecord(tv)
	if err != nil {
		return false, err
	}
	pid, slot := unpackTID(tid)
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(pid) >= h.nPages {
		h.nPages = int(pid) + 1
		h.lastPage = pid
	}
	placed := false
	err = h.pool.WithPageDirty(pid, func(p page) error {
		ok, err := p.restoreAt(slot, rec)
		placed = ok
		return err
	})
	if err != nil {
		return false, err
	}
	if placed {
		h.live++
		h.bytes += int64(len(rec))
	}
	return placed, nil
}

// ForceXmax implements storage.RecoverableHeap: replay stamps only
// committed deleters, which override any stale in-flight stamp a
// flushed page may carry.
func (h *PagedHeap) ForceXmax(tid storage.TID, xid storage.XID) {
	pid, slot := unpackTID(tid)
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(pid) >= h.nPages {
		return
	}
	_ = h.pool.WithPageDirty(pid, func(p page) error {
		if rec := p.record(slot); rec != nil {
			binary.LittleEndian.PutUint64(rec[8:], uint64(xid))
		}
		return nil
	})
}

// Recount rebuilds the live/bytes counters by scanning every page;
// recovery calls it after reopening a heap file (whose counters are
// not persisted).
func (h *PagedHeap) Recount() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	live := 0
	var bytes int64
	for pid := PageID(0); int(pid) < h.nPages; pid++ {
		err := h.pool.WithPage(pid, func(p page) error {
			for s := 0; s < p.nSlots(); s++ {
				if rec := p.record(s); rec != nil {
					live++
					bytes += int64(len(rec))
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	h.live, h.bytes = live, bytes
	return nil
}

// Close releases the underlying store. With discard set, dirty pages
// are dropped instead of written back (used when the table is being
// dropped and its file deleted).
func (h *PagedHeap) Close(discard bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if discard {
		return h.pool.CloseDiscard()
	}
	return h.pool.Close()
}

// NPages returns the number of allocated pages (for space accounting).
func (h *PagedHeap) NPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.nPages
}

// Flush writes back all dirty pages.
func (h *PagedHeap) Flush() error { return h.pool.FlushAll() }

// WritePagesTo streams every page, checksum stamped, to w — the
// basebackup serialization replication uses. Each page image is
// internally consistent (copied under the buffer-pool frame lock);
// cross-page skew is repaired by the idempotent WAL replay that
// follows a basebackup, exactly as it is after a crash.
func (h *PagedHeap) WritePagesTo(w io.Writer) error {
	h.mu.RLock()
	n := h.nPages
	h.mu.RUnlock()
	buf := make(page, PageSize)
	for pid := PageID(0); int(pid) < n; pid++ {
		err := h.pool.WithPage(pid, func(p page) error {
			copy(buf, p)
			return nil
		})
		if err != nil {
			return err
		}
		buf.stampChecksum()
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
