// Ablation benchmarks for the design choices DESIGN.md calls out:
// each isolates one mechanism so its cost (or saving) is visible,
// complementing the paper-figure benchmarks in bench_test.go.
package ifdb_test

import (
	"fmt"
	"testing"

	"ifdb"
	"ifdb/internal/label"
	"ifdb/platform"
)

// BenchmarkAblationLabelCheck measures the raw visibility predicate:
// subset checks at various label sizes, with and without compound
// subsumption in play. This is the per-tuple cost Query by Label adds
// to every scan.
func BenchmarkAblationLabelCheck(b *testing.B) {
	for _, k := range []int{1, 2, 5, 10} {
		tags := make([]label.Tag, k)
		for i := range tags {
			tags[i] = label.Tag(i + 1)
		}
		tuple := label.New(tags...)
		process := tuple.Add(label.Tag(100)) // superset
		b.Run(fmt.Sprintf("subset-k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !tuple.SubsetOf(process) {
					b.Fatal("subset check failed")
				}
			}
		})
		hier := label.NewHierarchy()
		compound := label.Tag(1000)
		for _, t := range tags {
			if err := hier.Declare(t, compound); err != nil {
				b.Fatal(err)
			}
		}
		compLabel := label.New(compound)
		b.Run(fmt.Sprintf("compound-k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !hier.Flows(tuple, compLabel) {
					b.Fatal("compound flow failed")
				}
			}
		})
	}
}

// BenchmarkAblationAuthorityCache contrasts authority checks through
// the platform cache against direct authority-state walks — the
// optimization the paper's PHP-IF needed shared memory for (§7.2).
func BenchmarkAblationAuthorityCache(b *testing.B) {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	owner := db.CreatePrincipal("owner")
	// A delegation chain so the uncached walk has real work to do.
	tg, err := db.CreateTag(owner, "deep_tag")
	if err != nil {
		b.Fatal(err)
	}
	prev := owner
	var leaf ifdb.Principal
	for i := 0; i < 8; i++ {
		p := db.CreatePrincipal(fmt.Sprintf("link%d", i))
		if err := db.Delegate(prev, p, tg); err != nil {
			b.Fatal(err)
		}
		prev = p
		leaf = p
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !db.HasAuthority(leaf, tg) {
				b.Fatal("authority lost")
			}
		}
	})
	cache := platform.NewAuthorityCache(db)
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !cache.Has(leaf, tg) {
				b.Fatal("authority lost")
			}
		}
	})
}

// BenchmarkAblationStatementCache quantifies the prepared-statement
// cache by comparing a repeated query against unique query texts that
// always miss.
func BenchmarkAblationStatementCache(b *testing.B) {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	s := db.AdminSession()
	if _, err := s.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Exec(`INSERT INTO t VALUES (1, 10)`); err != nil {
		b.Fatal(err)
	}
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(`SELECT v FROM t WHERE id = $1`, ifdb.Int(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf(`SELECT v FROM t WHERE id = %d`, i%2+1)
			// Vary whitespace so every iteration is a distinct text.
			q += fmt.Sprintf(" -- %d", i)
			if _, err := s.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIndexJoin contrasts the index nested-loop join
// against the hash-join fallback on the same query shape (the planner
// feature that keeps Fig. 4's baseline honest).
func BenchmarkAblationIndexJoin(b *testing.B) {
	db := ifdb.MustOpen(ifdb.Config{})
	s := db.AdminSession()
	if _, err := s.Exec(`
		CREATE TABLE a (id BIGINT PRIMARY KEY, x BIGINT);
		CREATE TABLE bb (id BIGINT PRIMARY KEY, aid BIGINT, y BIGINT);
		CREATE INDEX bb_aid ON bb (aid)`); err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if _, err := s.Exec(`INSERT INTO a VALUES ($1, $2)`, ifdb.Int(i), ifdb.Int(i*2)); err != nil {
			b.Fatal(err)
		}
		for j := int64(0); j < 4; j++ {
			if _, err := s.Exec(`INSERT INTO bb VALUES ($1, $2, $3)`,
				ifdb.Int(i*4+j), ifdb.Int(i), ifdb.Int(j)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("index-probe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Equi-join on bb.aid (indexed): index nested-loop path.
			res, err := s.Exec(`SELECT COUNT(*) FROM a JOIN bb ON bb.aid = a.id WHERE a.id = $1`,
				ifdb.Int(int64(i%500)))
			if err != nil || res.Rows[0][0].Int() != 4 {
				b.Fatalf("%v %v", res, err)
			}
		}
	})
	b.Run("hash-fallback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Join on the unindexed y column: hash-join path over the
			// whole inner relation.
			res, err := s.Exec(`SELECT COUNT(*) FROM a JOIN bb ON bb.y = a.x WHERE a.id = $1`,
				ifdb.Int(int64(i%500)))
			if err != nil || len(res.Rows) != 1 {
				b.Fatalf("%v %v", res, err)
			}
		}
	})
}

// BenchmarkAblationOnDiskVsMemory isolates the paged-heap overhead on
// identical point-update workloads.
func BenchmarkAblationOnDiskVsMemory(b *testing.B) {
	for _, disk := range []bool{false, true} {
		name := "memory"
		ddl := `CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)`
		if disk {
			name = "disk"
			ddl += ` USING DISK`
		}
		b.Run(name, func(b *testing.B) {
			db := ifdb.MustOpen(ifdb.Config{BufferPoolPages: 16})
			s := db.AdminSession()
			if _, err := s.Exec(ddl); err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < 2000; i++ {
				if _, err := s.Exec(`INSERT INTO t VALUES ($1, 0)`, ifdb.Int(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ifdb.Int(int64(i % 2000))
				if _, err := s.Exec(`UPDATE t SET v = v + 1 WHERE id = $1`, id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
