package ifdb_test

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/repl"
	"ifdb/internal/types"
	"ifdb/internal/wire"
)

// The scatter-gather equivalence suite: every statement in the battery
// runs against a 3-shard cluster — through the distplan split/merge
// path — and against a single-node oracle holding the same rows, and
// the results are compared byte-for-byte (columns, values with their
// kinds, row labels, error text). The only sanctioned divergences are
// row order where the statement imposes none (normalized by sorting)
// and the per-shard error prefix the Router wraps around fan-out
// failures (stripped before comparison).
//
// IFDB_SCATTER_SEEDS selects the data seeds (comma-separated); the CI
// race job runs a small matrix.

// startIFCShard is startShard with information flow control enabled.
func startIFCShard(t *testing.T, mapFn func() *wire.ShardMap, sid uint32) (string, *ifdb.DB) {
	t.Helper()
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	sequentialIDs(db)
	db.Engine().SetShardGuard(shardGuardFor(mapFn, sid))
	srv := wire.NewServer(db.Engine(), "")
	srv.ShardMap = mapFn
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); db.Close() })
	return ln.Addr().String(), db
}

// sequentialIDs makes a node's principal/tag IDs deterministic so the
// same creation order yields the same IDs on every node. (A real
// deployment aligns tag IDs through the coordinator; the test
// recreates the invariant by construction and asserts it.)
func sequentialIDs(db *ifdb.DB) {
	var n uint64
	db.Engine().Authority().SetIDSourceForTest(func() uint64 { n++; return n })
}

// alignTag creates the same principal and tag on a node, in the same
// order, so the numeric tag IDs agree across every shard and the
// oracle.
func alignTag(t *testing.T, addr string) client.Tag {
	t.Helper()
	c, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p, err := c.CreatePrincipal("owner")
	if err != nil {
		t.Fatal(err)
	}
	c.SetPrincipal(p)
	tg, err := c.CreateTag("sekrit")
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

var fanoutPrefix = regexp.MustCompile(`client: fan-out read on shard \d+: `)

// renderResult canonicalizes a result for comparison: columns, then
// one line per row carrying each value's kind and text plus the row
// label. Statements that impose no order get their rows sorted.
func renderResult(res *client.Result, ordered, withLabels bool) string {
	rows := make([]string, 0, len(res.Rows))
	for i, r := range res.Rows {
		var sb strings.Builder
		for _, v := range r {
			fmt.Fprintf(&sb, "%v:%s|", v.Kind(), v.String())
		}
		if withLabels && res.RowLabels != nil && i < len(res.RowLabels) && len(res.RowLabels[i]) > 0 {
			fmt.Fprintf(&sb, "L%v", res.RowLabels[i])
		}
		rows = append(rows, sb.String())
	}
	if !ordered {
		sort.Strings(rows)
	}
	return strings.Join(res.Cols, ",") + "\n" + strings.Join(rows, "\n")
}

// scatterSeeds parses IFDB_SCATTER_SEEDS (default one seed).
func scatterSeeds(t *testing.T) []int64 {
	env := os.Getenv("IFDB_SCATTER_SEEDS")
	if env == "" {
		return []int64{1}
	}
	var seeds []int64
	for _, s := range strings.Split(env, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("IFDB_SCATTER_SEEDS: %v", err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// scatterBattery is the equivalence battery. ordered marks statements
// whose result order is fully determined (unique sort keys); the rest
// are compared as multisets. repLabels marks DISTINCT row statements,
// where duplicates may carry different labels and which
// representative survives dedup is consumption-order-dependent (the
// engine keeps the first seen; the gateway sees shards' firsts in
// merge order) — values still compare exactly, labels do not.
var scatterBattery = []struct {
	sql       string
	ordered   bool
	repLabels bool
}{
	{`SELECT count(*) FROM kv`, false, false},
	{`SELECT count(v) FROM kv`, false, false},
	{`SELECT sum(v) FROM kv`, false, false},
	{`SELECT avg(v) FROM kv`, false, false},
	{`SELECT min(v), max(v) FROM kv`, false, false},
	{`SELECT min(g) FROM kv`, false, false},
	{`SELECT g, count(*) FROM kv GROUP BY g`, false, false},
	{`SELECT g, sum(v) AS s FROM kv GROUP BY g HAVING count(*) > 3 ORDER BY g`, true, false},
	{`SELECT g, avg(v) FROM kv GROUP BY g ORDER BY g`, true, false},
	{`SELECT g, min(v), max(v), count(*) FROM kv GROUP BY g ORDER BY g`, true, false},
	{`SELECT v FROM kv ORDER BY v LIMIT 5`, true, false},
	{`SELECT v FROM kv ORDER BY v DESC LIMIT 5 OFFSET 3`, true, false},
	{`SELECT DISTINCT g FROM kv ORDER BY g`, true, true},
	{`SELECT count(DISTINCT g) FROM kv`, false, false},
	{`SELECT g, count(*) FROM kv WHERE v > 50 GROUP BY g ORDER BY g`, true, false},
	{`SELECT k + v FROM kv ORDER BY k LIMIT 10`, true, false},
	{`SELECT g, v FROM kv ORDER BY g, v`, true, false},
	{`SELECT sum(v) FROM kv WHERE g = 'zz'`, false, false},
	{`SELECT v FROM kv WHERE k < 0 ORDER BY v`, true, false},
	{`SELECT sum(g) FROM kv`, false, false}, // type error: both sides must refuse identically
}

// TestScatterEquivalence runs the battery over a 3-shard IFC cluster
// at three privilege/config levels — an unprivileged Router with a
// narrow fan-out window, a secrecy-carrying Router, and a Router with
// partial-aggregate pushdown disabled (the ship-all-rows baseline) —
// each against the matching single-node oracle session.
func TestScatterEquivalence(t *testing.T) {
	for _, seed := range scatterSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { scatterEquivalenceSeed(t, seed) })
	}
}

func scatterEquivalenceSeed(t *testing.T, seed int64) {
	smap := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
	mapFn := func() *wire.ShardMap { return smap }
	addr0, _ := startIFCShard(t, mapFn, 0)
	addr1, _ := startIFCShard(t, mapFn, 1)
	addr2, _ := startIFCShard(t, mapFn, 2)
	smap.Shards = []wire.Shard{
		{ID: 0, Primary: addr0}, {ID: 1, Primary: addr1}, {ID: 2, Primary: addr2},
	}

	// Single-node oracle with IFC, same schema, same rows.
	oracle := ifdb.MustOpen(ifdb.Config{IFC: true})
	sequentialIDs(oracle)
	osrv := wire.NewServer(oracle.Engine(), "")
	oln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(oln)
	t.Cleanup(func() { osrv.Close(); oracle.Close() })
	oracleAddr := oln.Addr().String()

	// One tag, identical ID everywhere (asserted, not assumed).
	tags := make([]client.Tag, 0, 4)
	for _, a := range []string{addr0, addr1, addr2, oracleAddr} {
		tags = append(tags, alignTag(t, a))
	}
	for _, tg := range tags[1:] {
		if tg != tags[0] {
			t.Fatalf("tag IDs diverged across nodes: %v", tags)
		}
	}
	tag := tags[0]

	routers := map[string]*client.Router{}
	for name, cfg := range map[string]client.RouterConfig{
		"public":  {Addrs: []string{addr0, addr1, addr2}, MaxFanout: 2},
		"secrecy": {Addrs: []string{addr0, addr1, addr2}, Secrecy: []client.Tag{tag}},
		"shiprows": {Addrs: []string{addr0, addr1, addr2}, Secrecy: []client.Tag{tag},
			DisableAggPushdown: true},
	} {
		r, err := client.OpenRouter(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		routers[name] = r
	}

	connPub, err := client.Dial(oracleAddr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer connPub.Close()
	connSec, err := client.Dial(oracleAddr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer connSec.Close()
	connSec.AddSecrecy(tag)

	if _, err := routers["public"].Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, g TEXT, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := connPub.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, g TEXT, v BIGINT)`); err != nil {
		t.Fatal(err)
	}

	// Seeded data: unique v (deterministic ties), small group space,
	// every tenth-ish row written under the secrecy tag.
	rng := rand.New(rand.NewSource(seed))
	groups := []string{"red", "green", "blue", "cyan", "plum"}
	const n = 60
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		g := groups[rng.Intn(len(groups))]
		v := int64(perm[i]*3 + 1)
		params := []client.Value{ifdb.Int(int64(i)), ifdb.Text(g), ifdb.Int(v)}
		secret := i%10 == 7
		var rerr, oerr error
		if secret {
			_, rerr = routers["secrecy"].Exec(`INSERT INTO kv VALUES ($1, $2, $3)`, params...)
			_, oerr = connSec.Exec(`INSERT INTO kv VALUES ($1, $2, $3)`, params...)
		} else {
			_, rerr = routers["public"].Exec(`INSERT INTO kv VALUES ($1, $2, $3)`, params...)
			_, oerr = connPub.Exec(`INSERT INTO kv VALUES ($1, $2, $3)`, params...)
		}
		if rerr != nil || oerr != nil {
			t.Fatalf("insert %d: cluster=%v oracle=%v", i, rerr, oerr)
		}
	}

	oracleFor := map[string]*client.Conn{"public": connPub, "secrecy": connSec, "shiprows": connSec}
	for name, router := range routers {
		for _, bc := range scatterBattery {
			got, gerr := router.Exec(bc.sql)
			want, werr := oracleFor[name].Exec(bc.sql)
			if (gerr != nil) != (werr != nil) {
				t.Fatalf("[%s] %s: cluster err %v, oracle err %v", name, bc.sql, gerr, werr)
			}
			if gerr != nil {
				g := fanoutPrefix.ReplaceAllString(gerr.Error(), "")
				if g != werr.Error() {
					t.Fatalf("[%s] %s: error text diverged\ncluster: %s\noracle:  %s", name, bc.sql, g, werr)
				}
				continue
			}
			if g, w := renderResult(got, bc.ordered, !bc.repLabels), renderResult(want, bc.ordered, !bc.repLabels); g != w {
				t.Fatalf("[%s] %s: results diverged\ncluster:\n%s\noracle:\n%s", name, bc.sql, g, w)
			}
		}
	}

	// The same split path serves prepared and streaming reads.
	st, err := routers["public"].Prepare(`SELECT g, count(*) FROM kv GROUP BY g ORDER BY g`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	for rows.Next() {
		streamed++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := connPub.Exec(`SELECT g, count(*) FROM kv GROUP BY g ORDER BY g`)
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(want.Rows) {
		t.Fatalf("prepared scatter stream: %d rows, oracle %d", streamed, len(want.Rows))
	}

	// Keyless EXPLAIN renders the distributed plan; keyed EXPLAIN
	// routes to the owning shard and returns the engine's plan.
	res, err := routers["public"].Exec(`EXPLAIN SELECT g, count(*) FROM kv GROUP BY g`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || !strings.HasPrefix(res.Rows[0][0].Text(), "Scatter [shards=3") {
		t.Fatalf("distributed EXPLAIN: %v", res.Rows)
	}
	var sawFragment bool
	for _, r := range res.Rows {
		if strings.Contains(r[0].Text(), "Fragment (each shard):") {
			sawFragment = true
		}
	}
	if !sawFragment {
		t.Fatalf("distributed EXPLAIN lacks the fragment line: %v", res.Rows)
	}
	res, err = routers["public"].Exec(`EXPLAIN SELECT v FROM kv WHERE k = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || strings.HasPrefix(res.Rows[0][0].Text(), "Scatter") {
		t.Fatalf("keyed EXPLAIN should be the owning shard's engine plan: %v", res.Rows)
	}
}

// TestScatterAggregateNoLeak is the IFC invariant for partial
// aggregation: a secret-labeled row must not leak through a partial
// aggregate to a gateway session that could not have read the row
// directly — Label Confinement runs in the fragment executor on each
// shard, under that session's label, before any partial state crosses
// the wire. A session carrying the tag sees the row's contribution and
// the merged aggregate keeps the tag in its label.
func TestScatterAggregateNoLeak(t *testing.T) {
	smap := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
	mapFn := func() *wire.ShardMap { return smap }
	addr0, _ := startIFCShard(t, mapFn, 0)
	addr1, _ := startIFCShard(t, mapFn, 1)
	smap.Shards = []wire.Shard{{ID: 0, Primary: addr0}, {ID: 1, Primary: addr1}}

	tag0, tag1 := alignTag(t, addr0), alignTag(t, addr1)
	if tag0 != tag1 {
		t.Fatalf("tag IDs diverged: %d vs %d", tag0, tag1)
	}
	tag := tag0

	pub, err := client.OpenRouter(client.RouterConfig{Addrs: []string{addr0, addr1}})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	sec, err := client.OpenRouter(client.RouterConfig{
		Addrs: []string{addr0, addr1}, Secrecy: []client.Tag{tag},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sec.Close()

	if _, err := pub.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, g TEXT, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	const public = 10
	for i := 0; i < public; i++ {
		if _, err := pub.Exec(`INSERT INTO kv VALUES ($1, 'a', $2)`,
			ifdb.Int(int64(i)), ifdb.Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// One secret row, enormous v so any leak into SUM/MAX is loud.
	if _, err := sec.Exec(`INSERT INTO kv VALUES ($1, 'a', $2)`,
		ifdb.Int(public), ifdb.Int(1_000_000)); err != nil {
		t.Fatal(err)
	}

	// The unprivileged gateway session: COUNT, SUM, MAX, GROUP BY —
	// none may reflect the secret row, and no result row may carry the
	// tag (there is nothing left to label once the row is confined).
	for _, q := range []string{
		`SELECT count(*) FROM kv`,
		`SELECT sum(v) FROM kv`,
		`SELECT max(v) FROM kv`,
		`SELECT g, count(*), sum(v) FROM kv GROUP BY g`,
	} {
		res, err := pub.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for i, r := range res.Rows {
			for _, v := range r {
				if v.Kind() == types.KindInt && v.Int() >= 1_000_000 {
					t.Fatalf("%s: secret row leaked into %v", q, r)
				}
			}
			if res.RowLabels != nil && i < len(res.RowLabels) && res.RowLabels[i].Has(tag) {
				t.Fatalf("%s: unprivileged result carries the secret tag: %v", q, res.RowLabels[i])
			}
		}
	}
	res, err := pub.Exec(`SELECT count(*) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != public {
		t.Fatalf("unprivileged count(*) = %d, want %d", got, public)
	}

	// The tagged session sees the row and the merged aggregate's label
	// unions the tag in — the gateway must not strip it.
	res, err = sec.Exec(`SELECT count(*), max(v) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int(); got != public+1 {
		t.Fatalf("tagged count(*) = %d, want %d", got, public+1)
	}
	if got := res.Rows[0][1].Int(); got != 1_000_000 {
		t.Fatalf("tagged max(v) = %d, want the secret row's value", got)
	}
	if len(res.RowLabels) != 1 || !res.RowLabels[0].Has(tag) {
		t.Fatalf("tagged aggregate label %v, want it to carry tag %d", res.RowLabels, tag)
	}
}

// TestRouterSessionReadYourWrites pins the per-session token scope: a
// write in one RouterSession must not force other sessions (or the
// Router's default scope) off a lagging replica — before this change
// the token was Router-global and any session's write degraded every
// caller's reads to the primary.
func TestRouterSessionReadYourWrites(t *testing.T) {
	const token = "tok"
	prim, err := ifdb.Open(ifdb.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	primSrv := wire.NewServer(prim.Engine(), token)
	primLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primAddr := primLn.Addr().String()
	primRepl := repl.NewPrimary(prim.Engine(), token)
	primReplLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go primRepl.Serve(primReplLn)
	go primSrv.Serve(primLn)
	defer primSrv.Close()

	replica, err := ifdb.Open(ifdb.Config{
		DataDir: t.TempDir(), ReplicaOf: primReplLn.Addr().String(), ReplToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	replSrv := wire.NewServer(replica.Engine(), token)
	replSrv.WaitTimeout = 250 * time.Millisecond
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go replSrv.Serve(replLn)
	defer replSrv.Close()
	replAddr := replLn.Addr().String()

	router, err := client.OpenRouter(client.RouterConfig{
		Addrs: []string{primAddr, replAddr}, Token: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	if _, err := router.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := router.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for replica.ReplicaAppliedLSN() < prim.WALEnd() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, want %d", replica.ReplicaAppliedLSN(), prim.WALEnd())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Freeze the replica where it stands: no further WAL reaches it.
	primRepl.Close()

	sessA := router.Session()
	sessB := router.Session()
	if _, err := sessA.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatal(err)
	}

	countVia := func(q func(string, ...client.Value) (*client.Result, error)) int64 {
		res, err := q(`SELECT count(*) FROM t`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].Int()
	}
	// Session B and the default scope never wrote row 2: their tokens
	// stop at the replicated LSN, so the frozen replica serves them —
	// the stale count proves they did not inherit session A's token.
	// (They run first: session A's read below marks the timed-out
	// replica down.)
	if got := countVia(sessB.Exec); got != 1 {
		t.Fatalf("session B read %d rows, want the replica's 1 (token must be per-session)", got)
	}
	if got := countVia(router.Exec); got != 1 {
		t.Fatalf("default-scope read %d rows, want the replica's 1", got)
	}
	// Session A's own token demands its write: the replica times out
	// the wait and the read falls through to the primary.
	if got := countVia(sessA.Exec); got != 2 {
		t.Fatalf("session A read %d rows, want its own write visible (read-your-writes)", got)
	}
}
