package ifdb_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ifdb"
)

// TestWALReplayDeterminism is the property both crash recovery and
// replication stand on: replaying one WAL (plus snapshot and heap
// files) into a fresh engine is deterministic. A random workload runs
// against a durable database, the process "crashes", and the data
// directory is copied and recovered twice — the two recovered engines
// must expose identical visible state, every seed.
func TestWALReplayDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			db, err := ifdb.Open(ifdb.Config{DataDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			runRandomWorkload(t, db, rand.New(rand.NewSource(seed)))
			db.Crash()

			dumps := make([]string, 2)
			for i := range dumps {
				cp := t.TempDir()
				copyDataDir(t, dir, cp)
				rdb, err := ifdb.Open(ifdb.Config{DataDir: cp})
				if err != nil {
					t.Fatalf("replay %d: %v", i, err)
				}
				dumps[i] = dumpSQL(t, rdb)
				if err := rdb.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if dumps[0] != dumps[1] {
				t.Fatalf("replay diverged:\nfirst:\n%s\nsecond:\n%s", dumps[0], dumps[1])
			}
			if !strings.Contains(dumps[0], "tid=") {
				t.Fatalf("replayed state suspiciously empty:\n%s", dumps[0])
			}
		})
	}
}

// runRandomWorkload drives inserts, updates, deletes, explicit
// transactions (committed and rolled back), checkpoints, and sequence
// allocations across mem and disk tables.
func runRandomWorkload(t *testing.T, db *ifdb.DB, rng *rand.Rand) {
	t.Helper()
	s := db.AdminSession()
	mustSQL(t, s, `CREATE TABLE tm (id BIGINT PRIMARY KEY, v BIGINT)`)
	mustSQL(t, s, `CREATE TABLE td (id BIGINT PRIMARY KEY, v BIGINT) USING DISK`)
	mustSQL(t, s, `SELECT create_sequence('ids')`)
	next := 0
	live := []int{}
	for op := 0; op < 400; op++ {
		table := "tm"
		if rng.Intn(2) == 0 {
			table = "td"
		}
		switch r := rng.Intn(10); {
		case r < 5: // insert
			mustSQL(t, s, fmt.Sprintf(`INSERT INTO %s VALUES (%d, %d)`, table, next, rng.Intn(1000)))
			live = append(live, next)
			next++
		case r < 7 && len(live) > 0: // update
			id := live[rng.Intn(len(live))]
			mustSQL(t, s, fmt.Sprintf(`UPDATE tm SET v = %d WHERE id = %d`, rng.Intn(1000), id))
		case r < 8 && len(live) > 0: // delete
			id := live[rng.Intn(len(live))]
			mustSQL(t, s, fmt.Sprintf(`DELETE FROM td WHERE id = %d`, id))
		case r < 9: // explicit txn, committed or rolled back
			mustSQL(t, s, `BEGIN`)
			mustSQL(t, s, fmt.Sprintf(`INSERT INTO %s VALUES (%d, nextval('ids'))`, table, next))
			if rng.Intn(2) == 0 {
				mustSQL(t, s, `COMMIT`)
				live = append(live, next)
			} else {
				mustSQL(t, s, `ROLLBACK`)
			}
			next++
		default: // checkpoint mid-stream
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One transaction left in flight at the crash.
	s2 := db.AdminSession()
	mustSQL(t, s2, `BEGIN`)
	mustSQL(t, s2, fmt.Sprintf(`INSERT INTO tm VALUES (%d, 0)`, next))
}

func mustSQL(t *testing.T, s *ifdb.Session, q string) {
	t.Helper()
	if _, err := s.Exec(q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

// dumpSQL serializes the visible state through the public API.
func dumpSQL(t *testing.T, db *ifdb.DB) string {
	t.Helper()
	var b strings.Builder
	s := db.AdminSession()
	for _, table := range []string{"tm", "td"} {
		res, err := s.Exec(fmt.Sprintf(`SELECT id, v FROM %s ORDER BY id`, table))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "table %s rows=%d\n", table, len(res.Rows))
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "  tid=%d v=%d\n", row[0].Int(), row[1].Int())
		}
	}
	return b.String()
}

func copyDataDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.Name() == "LOCK" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
