package ifdb_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"ifdb"
	"ifdb/internal/repl"
)

// TestReplicaOfPublicAPI drives replication through the public
// surface: a durable primary DB serving its WAL via repl.NewPrimary
// (what ifdb-server -repl-listen does), and a replica opened with
// Config.ReplicaOf that converges, answers queries, and rejects
// writes with ifdb.ErrReadOnlyReplica.
func TestReplicaOfPublicAPI(t *testing.T) {
	db, err := ifdb.Open(ifdb.Config{IFC: true, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE notes (id BIGINT PRIMARY KEY, body TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`INSERT INTO notes VALUES (1, 'hello'), (2, 'world')`); err != nil {
		t.Fatal(err)
	}

	p := repl.NewPrimary(db.Engine(), "s3cret")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()

	// Wrong token is refused.
	if _, err := ifdb.Open(ifdb.Config{
		IFC: true, DataDir: t.TempDir(),
		ReplicaOf: ln.Addr().String(), ReplToken: "wrong",
	}); err == nil {
		t.Fatal("replica with wrong token connected")
	}

	replica, err := ifdb.Open(ifdb.Config{
		IFC: true, DataDir: t.TempDir(),
		ReplicaOf: ln.Addr().String(), ReplToken: "s3cret",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if !replica.IsReplica() {
		t.Fatal("IsReplica() = false")
	}

	deadline := time.Now().Add(10 * time.Second)
	for replica.ReplicaAppliedLSN() < db.WALEnd() {
		if err := replica.ReplicationErr(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, want %d", replica.ReplicaAppliedLSN(), db.WALEnd())
		}
		time.Sleep(2 * time.Millisecond)
	}

	rs := replica.AdminSession()
	res, err := rs.Exec(`SELECT body FROM notes ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Text() != "hello" {
		t.Fatalf("replica rows: %v", res.Rows)
	}
	if _, err := rs.Exec(`INSERT INTO notes VALUES (3, 'nope')`); !errors.Is(err, ifdb.ErrReadOnlyReplica) {
		t.Fatalf("want ErrReadOnlyReplica, got %v", err)
	}
}
