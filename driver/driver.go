// Package driver registers an "ifdb" database/sql driver over the
// IFDB client API v2, opening every stdlib-compatible Go application
// and ORM as an IFDB workload.
//
// # Usage
//
//	import (
//		"database/sql"
//		_ "ifdb/driver"
//	)
//
//	db, err := sql.Open("ifdb", "ifdb://127.0.0.1:5432?token=demo&principal=1")
//
// Statements use IFDB's positional parameters ($1, $2, ...). Prepared
// statements map to wire-level PREPARE/EXECUTE (the statement is
// parsed once server-side and executions ship only a handle and
// parameters); queries stream their results in chunked ROWS frames,
// so iterating sql.Rows holds one chunk — not the result set — in
// memory. Context cancellation and deadlines propagate as the wire
// CANCEL frame, aborting the running statement and its transaction
// server-side.
//
// # DSN
//
// The DSN is a URL: ifdb://host:port with options in the query
// string (ifdb://token@host:port also carries the token):
//
//	token         platform token for the Hello handshake
//	principal     acting principal id (default 0)
//	secrecy       comma-separated tag NAMES added to the process
//	              label at connect (information flows into this
//	              connection's reads; see below)
//	endorse       comma-separated tag names endorsed into the
//	              process integrity label at connect (requires
//	              authority for each tag)
//	dial-timeout  per-connection dial timeout (Go duration)
//	reconnect     "1"/"true" arms the client's AutoReconnect (see
//	              client.Config for its at-least-once caveat)
//
// # IFC labels
//
// Each database/sql connection is one IFDB session carrying the
// process label established by the DSN: secrecy tags contaminate the
// connection (its reads may see, and its writes are stamped with,
// those tags), endorse tags claim integrity. Statements that change
// labels mid-session (SELECT addsecrecy(...) etc.) work, but remember
// database/sql hands you an arbitrary pooled connection per call —
// keep label-changing flows on a dedicated sql.Conn, or set labels
// only via the DSN so every pooled connection is equivalent.
//
// # Transactions
//
// Tx maps to BEGIN/COMMIT/ROLLBACK pinned to one connection (the
// default snapshot isolation, or SERIALIZABLE via
// sql.LevelSerializable). The Router's cross-node routing is not used
// here: the driver speaks to one server, like every other SQL driver.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ifdb/client"
	"ifdb/internal/types"
)

func init() {
	sql.Register("ifdb", &Driver{})
}

// Driver implements driver.Driver and driver.DriverContext.
type Driver struct{}

// Open opens a connection (driver.Driver).
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	cn, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return cn.Connect(context.Background())
}

// OpenConnector parses the DSN once (driver.DriverContext).
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	return ParseDSN(dsn)
}

// Connector holds a parsed DSN (driver.Connector).
type Connector struct {
	cfg     client.Config
	secrecy []string // tag names to AddSecrecy at connect
	endorse []string // tag names to Endorse at connect
	drv     *Driver
}

// ParseDSN parses an ifdb:// DSN into a Connector.
func ParseDSN(dsn string) (*Connector, error) {
	if !strings.Contains(dsn, "://") {
		dsn = "ifdb://" + dsn
	}
	u, err := url.Parse(dsn)
	if err != nil {
		return nil, fmt.Errorf("ifdb: bad DSN: %w", err)
	}
	if u.Scheme != "ifdb" {
		return nil, fmt.Errorf("ifdb: bad DSN scheme %q (want ifdb)", u.Scheme)
	}
	if u.Host == "" {
		return nil, errors.New("ifdb: DSN needs a host:port")
	}
	c := &Connector{drv: &Driver{}}
	c.cfg.Addr = u.Host
	if u.User != nil {
		c.cfg.Token = u.User.Username()
	}
	q := u.Query()
	if v := q.Get("token"); v != "" {
		c.cfg.Token = v
	}
	if v := q.Get("principal"); v != "" {
		p, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ifdb: bad principal %q", v)
		}
		c.cfg.Principal = p
	}
	if v := q.Get("dial-timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, fmt.Errorf("ifdb: bad dial-timeout %q", v)
		}
		c.cfg.DialTimeout = d
	}
	if v := q.Get("reconnect"); v == "1" || strings.EqualFold(v, "true") {
		c.cfg.AutoReconnect = true
	}
	c.secrecy = splitTags(q["secrecy"])
	c.endorse = splitTags(q["endorse"])
	return c, nil
}

func splitTags(vals []string) []string {
	var out []string
	for _, v := range vals {
		for _, t := range strings.Split(v, ",") {
			if t = strings.TrimSpace(t); t != "" {
				out = append(out, t)
			}
		}
	}
	return out
}

// Connect dials one connection and establishes the DSN's labels
// (driver.Connector).
func (c *Connector) Connect(ctx context.Context) (driver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cc, err := client.DialConfig(c.cfg)
	if err != nil {
		return nil, err
	}
	for _, name := range c.secrecy {
		t, err := cc.LookupTag(name)
		if err != nil {
			cc.Close()
			return nil, fmt.Errorf("ifdb: secrecy tag %q: %w", name, err)
		}
		cc.AddSecrecy(t)
	}
	for _, name := range c.endorse {
		t, err := cc.LookupTag(name)
		if err != nil {
			cc.Close()
			return nil, fmt.Errorf("ifdb: endorse tag %q: %w", name, err)
		}
		if err := cc.Endorse(t); err != nil {
			cc.Close()
			return nil, fmt.Errorf("ifdb: endorse tag %q: %w", name, err)
		}
	}
	return &conn{c: cc}, nil
}

// Driver returns the driver (driver.Connector).
func (c *Connector) Driver() driver.Driver { return c.drv }

// ---------------------------------------------------------------------------
// Conn

// conn adapts one client.Conn. database/sql serializes calls on a
// conn, matching client.Conn's single-threaded contract.
type conn struct {
	c   *client.Conn
	bad bool // a transport error happened: state unknown, retire
}

// errIfBad returns ErrBadConn for a conn already known broken —
// before anything was sent, so database/sql's retry on another conn
// cannot double-execute — and records fresh transport failures. The
// fresh failure itself is returned verbatim: the statement may have
// executed, and only the caller can decide whether to retry.
func (c *conn) noteErr(err error) error {
	if err != nil && client.IsTransportError(err) {
		c.bad = true
	}
	return err
}

// IsValid lets the pool discard broken conns on checkin
// (driver.Validator).
func (c *conn) IsValid() bool { return !c.bad }

// Prepare pins a statement server-side (driver.Conn).
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext.
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if c.bad {
		return nil, driver.ErrBadConn
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := c.c.Prepare(query)
	if err != nil {
		return nil, c.noteErr(err)
	}
	return &stmt{c: c, s: s}, nil
}

// Close closes the connection (driver.Conn).
func (c *conn) Close() error { return c.c.Close() }

// Begin starts a transaction (driver.Conn).
func (c *conn) Begin() (driver.Tx, error) {
	return c.BeginTx(context.Background(), driver.TxOptions{})
}

// BeginTx implements driver.ConnBeginTx: snapshot isolation by
// default, SERIALIZABLE on request.
func (c *conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	if c.bad {
		return nil, driver.ErrBadConn
	}
	if opts.ReadOnly {
		return nil, errors.New("ifdb: read-only transactions are not supported")
	}
	stmtText := "BEGIN"
	switch sql.IsolationLevel(opts.Isolation) {
	case sql.LevelDefault, sql.LevelSnapshot:
	case sql.LevelSerializable:
		stmtText = "BEGIN SERIALIZABLE"
	default:
		return nil, fmt.Errorf("ifdb: unsupported isolation level %s", sql.IsolationLevel(opts.Isolation))
	}
	if _, err := c.c.ExecContext(ctx, stmtText); err != nil {
		return nil, c.noteErr(err)
	}
	return &tx{c: c}, nil
}

// ExecContext implements driver.ExecerContext: one-shot execution
// without a prepare round trip.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if c.bad {
		return nil, driver.ErrBadConn
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	res, err := c.c.ExecContext(ctx, query, params...)
	if err != nil {
		return nil, c.noteErr(err)
	}
	return result{affected: res.Affected}, nil
}

// QueryContext implements driver.QueryerContext: one-shot streaming
// query.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if c.bad {
		return nil, driver.ErrBadConn
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	r, err := c.c.QueryContext(ctx, query, params...)
	if err != nil {
		return nil, c.noteErr(err)
	}
	return &rows{c: c, r: r}, nil
}

// Ping implements driver.Pinger.
func (c *conn) Ping(ctx context.Context) error {
	if c.bad {
		return driver.ErrBadConn
	}
	_, err := c.c.ExecContext(ctx, "SELECT 1")
	return c.noteErr(err)
}

// CheckNamedValue implements driver.NamedValueChecker: positional $n
// parameters only, stdlib type coercions.
func (c *conn) CheckNamedValue(nv *driver.NamedValue) error {
	if nv.Name != "" {
		return errors.New("ifdb: named parameters are not supported; use positional $n")
	}
	v, err := driver.DefaultParameterConverter.ConvertValue(nv.Value)
	if err != nil {
		return err
	}
	nv.Value = v
	return nil
}

// ---------------------------------------------------------------------------
// Stmt

type stmt struct {
	c *conn
	s *client.Stmt
}

// Close drops the server-side handle (driver.Stmt).
func (s *stmt) Close() error { return s.s.Close() }

// NumInput reports the statement's parameter count, derived from the
// parsed AST server-side (driver.Stmt).
func (s *stmt) NumInput() int { return s.s.NumParams() }

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

// ExecContext implements driver.StmtExecContext over the wire-level
// prepared handle.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	if s.c.bad {
		return nil, driver.ErrBadConn
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	res, err := s.s.ExecContext(ctx, params...)
	if err != nil {
		return nil, s.c.noteErr(err)
	}
	return result{affected: res.Affected}, nil
}

// QueryContext implements driver.StmtQueryContext, streaming.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	if s.c.bad {
		return nil, driver.ErrBadConn
	}
	params, err := toParams(args)
	if err != nil {
		return nil, err
	}
	r, err := s.s.QueryContext(ctx, params...)
	if err != nil {
		return nil, s.c.noteErr(err)
	}
	return &rows{c: s.c, r: r}, nil
}

func namedValues(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, a := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return out
}

// ---------------------------------------------------------------------------
// Rows / Result / Tx

type rows struct {
	c *conn
	r client.Rows
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.r.Columns() }

// Close implements driver.Rows.
func (r *rows) Close() error {
	err := r.r.Close()
	if err != nil {
		r.c.noteErr(err)
	}
	return nil
}

// Next implements driver.Rows, converting one streamed row.
func (r *rows) Next(dest []driver.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return r.c.noteErr(err)
		}
		return io.EOF
	}
	row := r.r.Row()
	if len(row) != len(dest) {
		return fmt.Errorf("ifdb: row has %d columns, want %d", len(row), len(dest))
	}
	for i, v := range row {
		dest[i] = toDriverValue(v)
	}
	return nil
}

type result struct{ affected int64 }

// LastInsertId implements driver.Result (unsupported: use RETURNING-
// style reads or sequences).
func (result) LastInsertId() (int64, error) {
	return 0, errors.New("ifdb: LastInsertId is not supported")
}

// RowsAffected implements driver.Result.
func (r result) RowsAffected() (int64, error) { return r.affected, nil }

type tx struct{ c *conn }

// Commit implements driver.Tx.
func (t *tx) Commit() error {
	_, err := t.c.c.Exec("COMMIT")
	return t.c.noteErr(err)
}

// Rollback implements driver.Tx.
func (t *tx) Rollback() error {
	_, err := t.c.c.Exec("ROLLBACK")
	return t.c.noteErr(err)
}

// ---------------------------------------------------------------------------
// Value conversion

// toParams converts database/sql arguments into IFDB values.
func toParams(args []driver.NamedValue) ([]client.Value, error) {
	out := make([]client.Value, len(args))
	for i, a := range args {
		v, err := toValue(a.Value)
		if err != nil {
			return nil, fmt.Errorf("ifdb: parameter $%d: %w", a.Ordinal, err)
		}
		out[i] = v
	}
	return out, nil
}

func toValue(v driver.Value) (client.Value, error) {
	switch x := v.(type) {
	case nil:
		return types.Null, nil
	case int64:
		return types.NewInt(x), nil
	case float64:
		return types.NewFloat(x), nil
	case bool:
		return types.NewBool(x), nil
	case string:
		return types.NewText(x), nil
	case []byte:
		return types.NewText(string(x)), nil
	case time.Time:
		return types.NewTime(x), nil
	}
	return types.Null, fmt.Errorf("unsupported type %T", v)
}

// toDriverValue renders an IFDB value as a driver.Value.
func toDriverValue(v client.Value) driver.Value {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindText:
		return v.Text()
	case types.KindBool:
		return v.Bool()
	case types.KindTime:
		return v.Time()
	default:
		// Labels (the _label column) render as their display string.
		return v.String()
	}
}
