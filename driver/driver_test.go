package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"net"
	"testing"
	"time"

	"ifdb"
	_ "ifdb/driver"
	"ifdb/internal/wire"
)

// startServer brings up a wire server over a fresh IFDB engine on a
// loopback listener.
func startServer(t *testing.T, token string) (*ifdb.DB, string) {
	t.Helper()
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	srv := wire.NewServer(db.Engine(), token)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return db, ln.Addr().String()
}

// TestDriverRoundTrip is the acceptance round trip: open by DSN,
// prepared insert/select with parameters, transactions both ways.
func TestDriverRoundTrip(t *testing.T) {
	_, addr := startServer(t, "tok")
	db, err := sql.Open("ifdb", "ifdb://"+addr+"?token=tok")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}

	if _, err := db.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	// Prepared insert with parameters: one PREPARE, many EXECUTEs.
	ins, err := db.Prepare(`INSERT INTO kv VALUES ($1, $2)`)
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	for i, v := range []string{"one", "two", "three"} {
		if _, err := ins.Exec(int64(i+1), v); err != nil {
			t.Fatalf("insert %d: %v", i+1, err)
		}
	}

	// Prepared select, streamed and scanned.
	sel, err := db.Prepare(`SELECT k, v FROM kv WHERE k >= $1 ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	rows, err := sel.Query(int64(2))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for rows.Next() {
		var k int64
		var v string
		if err := rows.Scan(&k, &v); err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if len(got) != 2 || got[0] != "two" || got[1] != "three" {
		t.Fatalf("select: %v", got)
	}

	// QueryRow convenience and RowsAffected.
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM kv`).Scan(&n); err != nil || n != 3 {
		t.Fatalf("count: %d %v", n, err)
	}
	res, err := db.Exec(`UPDATE kv SET v = $2 WHERE k = $1`, int64(1), "uno")
	if err != nil {
		t.Fatal(err)
	}
	if aff, _ := res.RowsAffected(); aff != 1 {
		t.Fatalf("affected: %d", aff)
	}

	// Transaction commit.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO kv VALUES (4, 'four')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Transaction rollback.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO kv VALUES (5, 'five')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow(`SELECT COUNT(*) FROM kv`).Scan(&n); err != nil || n != 4 {
		t.Fatalf("post-tx count: %d %v", n, err)
	}

	// Serializable isolation maps to BEGIN SERIALIZABLE.
	tx, err = db.BeginTx(context.Background(), &sql.TxOptions{Isolation: sql.LevelSerializable})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO kv VALUES (6, 'six')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// NULL round trip.
	if _, err := db.Exec(`INSERT INTO kv VALUES ($1, $2)`, int64(7), nil); err != nil {
		t.Fatal(err)
	}
	var v sql.NullString
	if err := db.QueryRow(`SELECT v FROM kv WHERE k = 7`).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v.Valid {
		t.Fatalf("want NULL, got %q", v.String)
	}
}

// TestDriverContextCancel shows a context deadline aborting a running
// statement *server-side*: the statement's transaction is rolled
// back, and the 10s-worth of sleeping the query asked for never
// happens.
func TestDriverContextCancel(t *testing.T) {
	_, addr := startServer(t, "")
	db, err := sql.Open("ifdb", "ifdb://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE big (k BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(`INSERT INTO big VALUES ($1)`, int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Pin one connection so the whole flow shares a server session.
	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tx, err := conn.BeginTx(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO big VALUES (999)`); err != nil {
		t.Fatal(err)
	}

	// 200 rows x 50ms of sleep = 10s if not canceled.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = tx.ExecContext(ctx, `SELECT sleep(50) FROM big`)
	if err == nil {
		t.Fatal("canceled statement succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancel took %v: statement was not aborted server-side", el)
	}

	// The statement failure aborted the server-side transaction
	// (PostgreSQL semantics), taking the uncommitted insert with it.
	if err := tx.Commit(); err == nil {
		t.Fatal("commit of an aborted transaction succeeded")
	}
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) FROM big WHERE k = 999`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("aborted transaction's insert survived")
	}
}

// TestDriverLabelsViaDSN: a DSN carrying secrecy=... yields
// connections contaminated with that tag — they see labeled rows an
// unlabeled connection cannot.
func TestDriverLabelsViaDSN(t *testing.T) {
	srv, addr := startServer(t, "")
	admin := srv.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE notes (id BIGINT PRIMARY KEY, body TEXT)`); err != nil {
		t.Fatal(err)
	}
	alice := srv.CreatePrincipal("alice")
	tag, err := srv.CreateTag(alice, "alice_notes")
	if err != nil {
		t.Fatal(err)
	}
	labeled := srv.NewSession(alice)
	if err := labeled.AddSecrecy(tag); err != nil {
		t.Fatal(err)
	}
	if _, err := labeled.Exec(`INSERT INTO notes VALUES (1, 'secret')`); err != nil {
		t.Fatal(err)
	}

	plain, err := sql.Open("ifdb", "ifdb://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	var n int64
	if err := plain.QueryRow(`SELECT COUNT(*) FROM notes`).Scan(&n); err != nil || n != 0 {
		t.Fatalf("unlabeled conn saw %d labeled rows (err %v)", n, err)
	}

	tagged, err := sql.Open("ifdb", "ifdb://"+addr+"?secrecy=alice_notes")
	if err != nil {
		t.Fatal(err)
	}
	defer tagged.Close()
	var body string
	if err := tagged.QueryRow(`SELECT body FROM notes WHERE id = 1`).Scan(&body); err != nil {
		t.Fatal(err)
	}
	if body != "secret" {
		t.Fatalf("body: %q", body)
	}
}
