package ifdb_test

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/repl"
	"ifdb/internal/wire"
)

// TestClusterFailoverEndToEnd drives the whole failover story over
// real sockets and the public surfaces: a primary/replica pair behind
// wire servers and a client.Router; the primary crashes; the replica
// is promoted over the wire (bumped epoch); the Router follows the
// promotion and redirects writes; the fenced old primary rejoins as a
// replica of the new primary and converges to identical state; and
// read-your-writes holds through the Router under concurrent writers
// both before and after the failover.
func TestClusterFailoverEndToEnd(t *testing.T) {
	const token = "tok"
	primDir := t.TempDir()

	// --- Old primary: durable DB, wire server, replication listener.
	prim, err := ifdb.Open(ifdb.Config{IFC: true, DataDir: primDir})
	if err != nil {
		t.Fatal(err)
	}
	primSrv := wire.NewServer(prim.Engine(), token)
	primLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primAddr := primLn.Addr().String()
	go primSrv.Serve(primLn)
	primRepl := repl.NewPrimary(prim.Engine(), token)
	primReplLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go primRepl.Serve(primReplLn)

	if _, err := prim.AdminSession().Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	// --- Replica: follows the primary; its wire server honors PROMOTE
	// and starts serving replication the moment it is promoted (what
	// ifdb-server does with -replica-of + -repl-listen).
	replica, err := ifdb.Open(ifdb.Config{
		IFC: true, DataDir: t.TempDir(),
		ReplicaOf: primReplLn.Addr().String(), ReplToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	replSrv := wire.NewServer(replica.Engine(), token)
	replSrv.StatusErr = replica.ReplicationErr
	var newRepl *repl.Primary
	var newReplAddr string
	replSrv.Promote = func() error {
		if err := replica.Promote(); err != nil {
			return err
		}
		newRepl = repl.NewPrimary(replica.Engine(), token)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		newReplAddr = ln.Addr().String()
		go newRepl.Serve(ln)
		return nil
	}
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	replAddr := replLn.Addr().String()
	go replSrv.Serve(replLn)
	defer replSrv.Close()

	// --- Router over both nodes.
	router, err := client.OpenRouter(client.RouterConfig{
		Addrs: []string{primAddr, replAddr}, Token: token,
		FailoverTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if router.Primary() != primAddr {
		t.Fatalf("router primary = %s, want %s", router.Primary(), primAddr)
	}

	// Read-your-writes property under concurrent writers: every worker
	// inserts a row and must immediately read it back through the
	// Router, whose reads go to the replica with the commit-LSN token.
	rywProperty := func(base int) {
		t.Helper()
		const workers, rows = 4, 15
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < rows; i++ {
					id := base + w*rows + i
					if _, err := router.Exec(`INSERT INTO t VALUES ($1, $2)`,
						ifdb.Int(int64(id)), ifdb.Text(fmt.Sprintf("w%d", w))); err != nil {
						errc <- fmt.Errorf("insert %d: %w", id, err)
						return
					}
					res, err := router.Exec(`SELECT v FROM t WHERE id = $1`, ifdb.Int(int64(id)))
					if err != nil {
						errc <- fmt.Errorf("read %d: %w", id, err)
						return
					}
					if len(res.Rows) != 1 {
						errc <- fmt.Errorf("read-your-writes violated: row %d invisible after acknowledged write", id)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
	}
	rywProperty(0)

	// Sanity: reads really were served by the replica's state (it
	// converged), and the write epoch is 1.
	st := probeStatus(t, replAddr, token)
	if !st.Replica || st.Epoch != 1 {
		t.Fatalf("replica status before failover: %+v", st)
	}

	// --- Crash the primary: client listener, repl listener, process.
	primSrv.Close()
	primRepl.Close()
	prim.Crash()

	// --- Manual failover over the wire (what ifdb-cli \promote or the
	// coordinator's PromoteBest issues).
	pconn, err := client.Dial(replAddr, token, 0)
	if err != nil {
		t.Fatal(err)
	}
	pst, err := pconn.PromoteNode()
	pconn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if pst.Replica || pst.Epoch != 2 {
		t.Fatalf("post-promotion status: %+v", pst)
	}
	if replica.IsReplica() || replica.Epoch() != 2 {
		t.Fatalf("replica DB not promoted: replica=%v epoch=%d", replica.IsReplica(), replica.Epoch())
	}
	defer func() {
		if newRepl != nil {
			newRepl.Close()
		}
	}()

	// --- The Router redirects writes to the new primary.
	if _, err := router.Exec(`INSERT INTO t VALUES (1000, 'after-failover')`); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if router.Primary() != replAddr {
		t.Fatalf("router still writes to %s after failover", router.Primary())
	}
	res, err := router.Exec(`SELECT v FROM t WHERE id = 1000`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Text() != "after-failover" {
		t.Fatalf("read after failover: %v %v", res, err)
	}

	// --- The fenced old primary rejoins as a replica of the new
	// primary (same DataDir, same client address — a restart on its
	// host), re-bootstrapping across the epoch boundary.
	before := newRepl.Basebackups.Load()
	rejoined, err := ifdb.Open(ifdb.Config{
		IFC: true, DataDir: primDir,
		ReplicaOf: newReplAddr, ReplToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rejoined.Close()
	if got := newRepl.Basebackups.Load(); got != before+1 {
		t.Fatalf("old primary rejoined without re-bootstrapping (%d → %d basebackups)", before, got)
	}
	rejoinedSrv := wire.NewServer(rejoined.Engine(), token)
	rejoinedSrv.StatusErr = rejoined.ReplicationErr
	rejoinedLn := relisten(t, primAddr)
	go rejoinedSrv.Serve(rejoinedLn)
	defer rejoinedSrv.Close()
	if err := router.Reprobe(); err != nil {
		t.Fatal(err)
	}

	// Read-your-writes again, now with writes on the new primary and
	// reads load-balanced to the rejoined old primary at epoch 2.
	rywProperty(10000)

	// --- Convergence: both nodes answer with identical state.
	waitCaughtUp(t, replica, rejoined)
	a := dumpOverWire(t, replAddr, token)
	b := dumpOverWire(t, primAddr, token)
	if a != b {
		t.Fatalf("state diverged after rejoin:\nnew primary:\n%s\nrejoined:\n%s", a, b)
	}
}

// probeStatus dials addr and returns its STATUS.
func probeStatus(t *testing.T, addr, token string) *client.Status {
	t.Helper()
	conn, err := client.Dial(addr, token, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.Status()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// relisten binds addr, retrying briefly (the previous listener may
// still be winding down).
func relisten(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("relisten %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitCaughtUp blocks until the rejoined replica has applied the new
// primary's full log.
func waitCaughtUp(t *testing.T, primary, replica *ifdb.DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for replica.ReplicaAppliedLSN() < primary.WALEnd() {
		if err := replica.ReplicationErr(); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined replica stuck at %d, want %d", replica.ReplicaAppliedLSN(), primary.WALEnd())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// dumpSQL renders a node's visible table state over the wire.
func dumpOverWire(t *testing.T, addr, token string) string {
	t.Helper()
	conn, err := client.Dial(addr, token, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Exec(`SELECT id, v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%v", res.Rows)
}
