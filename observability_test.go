package ifdb_test

import (
	"net"
	"testing"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/wire"
)

// TestTraceIDPropagation drives a statement through the full stack —
// client EXECUTE frame with a client-generated trace ID, server-side
// per-statement timing — and reads the breakdown back over the "stats"
// control op, checking the ID the server recorded is the ID the client
// sent.
func TestTraceIDPropagation(t *testing.T) {
	db := ifdb.MustOpen(ifdb.Config{})
	defer db.Close()
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
		t.Fatal(err)
	}

	srv := wire.NewServer(db.Engine(), "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := client.Dial(ln.Addr().String(), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(1), ifdb.Int(2)); err != nil {
		t.Fatal(err)
	}
	want := c.LastTraceID()
	if want == 0 {
		t.Fatal("client did not stamp a trace ID")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID != want {
		t.Fatalf("server recorded trace %016x, client sent %016x", st.TraceID, want)
	}
	if st.ParseNs <= 0 || st.ExecNs <= 0 {
		t.Fatalf("timing breakdown not filled: %+v", st)
	}
	if st.PlanNs < 0 || st.StreamNs < 0 {
		t.Fatalf("negative timing: %+v", st)
	}

	// A second statement gets a fresh ID, and \stats tracks the latest.
	if _, err := c.Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(1)); err != nil {
		t.Fatal(err)
	}
	if c.LastTraceID() == want {
		t.Fatal("trace ID reused across statements")
	}
	st2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st2.TraceID != c.LastTraceID() {
		t.Fatalf("stats trace %016x, want latest %016x", st2.TraceID, c.LastTraceID())
	}
}
