#!/usr/bin/env bash
# docs_smoke.sh — keep README.md executable rather than decorative.
#
# CI runs this after build: it extracts the quickstart session and the
# shard-map example straight out of README.md (between the HTML marker
# comments), runs them against live servers, and asserts the outcomes
# the prose promises. Editing the README without keeping the commands
# working fails the job; editing server flags without updating the
# README fails the flag-drift check.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/bin/" ./cmd/...

# --- 1. The quickstart ifdb-cli session, verbatim from README.md.
awk '/<!-- quickstart-cli-begin -->/{f=1;next} /<!-- quickstart-cli-end -->/{f=0} f' README.md \
  | sed '/^```/d' > "$workdir/session.sql"
if ! grep -q "SELECT" "$workdir/session.sql"; then
  echo "docs_smoke: README quickstart session not found (markers moved?)" >&2
  exit 1
fi

"$workdir/bin/ifdb-server" -addr 127.0.0.1:15433 -token demo \
  >"$workdir/server.log" 2>&1 &
for i in $(seq 1 50); do
  if "$workdir/bin/ifdb-cli" -addr 127.0.0.1:15433 -token demo </dev/null >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

out=$("$workdir/bin/ifdb-cli" -addr 127.0.0.1:15433 -token demo < "$workdir/session.sql")
echo "$out"
# The prose's claims: the labeled row is visible while contaminated...
echo "$out" | grep -q "Alice | flu" || { echo "docs_smoke: labeled read missing"; exit 1; }
# ...and invisible again after declassification (Query by Label).
echo "$out" | grep -q "(0 rows)" || { echo "docs_smoke: post-declassify confinement missing"; exit 1; }
echo "$out" | grep -q "tag alice_medical" || { echo "docs_smoke: tag creation missing"; exit 1; }
if echo "$out" | grep -q "error:"; then
  echo "docs_smoke: quickstart session reported an error" >&2
  exit 1
fi

# --- 1b. The "Using database/sql" walkthrough: the README's Go block
# must be byte-identical to examples/sqldriver/main.go (no drift), and
# the example must run green against the quickstart server still up on
# 15433.
awk '/<!-- sqldriver-begin -->/{f=1;next} /<!-- sqldriver-end -->/{f=0} f' README.md \
  | sed '/^```/d' > "$workdir/sqldriver.go"
if ! diff -u examples/sqldriver/main.go "$workdir/sqldriver.go"; then
  echo "docs_smoke: README sqldriver block drifted from examples/sqldriver/main.go" >&2
  exit 1
fi
driverout=$(go run ./examples/sqldriver -addr 127.0.0.1:15433 -token demo)
echo "$driverout"
echo "$driverout" | grep -q "sqldriver: OK" || { echo "docs_smoke: sqldriver walkthrough failed"; exit 1; }
echo "$driverout" | grep -q "2. ship database  done=true" || { echo "docs_smoke: sqldriver output drifted"; exit 1; }

# --- 1c. The EXPLAIN walkthrough, verbatim from README.md, against
# the quickstart server still up on 15433 (the session continues it):
# the plan must show the index pick, the pushdown, and the pruned
# column set the prose walks through.
awk '/<!-- explain-cli-begin -->/{f=1;next} /<!-- explain-cli-end -->/{f=0} f' README.md \
  | sed '/^```/d' > "$workdir/explain.sql"
if ! grep -q "EXPLAIN" "$workdir/explain.sql"; then
  echo "docs_smoke: README EXPLAIN session not found (markers moved?)" >&2
  exit 1
fi
explout=$("$workdir/bin/ifdb-cli" -addr 127.0.0.1:15433 -token demo < "$workdir/explain.sql")
echo "$explout"
echo "$explout" | grep -q "scan visits AS v | index=visits_patient prefix=1" \
  || { echo "docs_smoke: EXPLAIN lost the index selection the README shows"; exit 1; }
echo "$explout" | grep -q "push=\[(v.patient = 'Alice') AND (v.day > 100)\]" \
  || { echo "docs_smoke: EXPLAIN lost the predicate pushdown the README shows"; exit 1; }
echo "$explout" | grep -q "cols=\[patient, day\]" \
  || { echo "docs_smoke: EXPLAIN lost the projection pruning the README shows"; exit 1; }
echo "$explout" | grep -q "join index INNER patients" \
  || { echo "docs_smoke: EXPLAIN lost the index join the README shows"; exit 1; }
if echo "$explout" | grep -q "error:"; then
  echo "docs_smoke: EXPLAIN session reported an error" >&2
  exit 1
fi

# --- 2. The sharded-cluster walkthrough's map file parses and serves.
awk '/# shards.conf/{f=1;next} /^```/{if(f)exit} f' README.md > "$workdir/shards.conf"
if ! grep -q "^shard 0" "$workdir/shards.conf"; then
  echo "docs_smoke: README shard map example not found" >&2
  exit 1
fi
"$workdir/bin/ifdb-server" -addr 127.0.0.1:15434 -token demo \
  -shard-id 0 -shard-map "$workdir/shards.conf" \
  >"$workdir/server-shard.log" 2>&1 &
for i in $(seq 1 50); do
  if "$workdir/bin/ifdb-cli" -addr 127.0.0.1:15434 -token demo </dev/null >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
shardout=$(echo '\shardmap' | "$workdir/bin/ifdb-cli" -addr 127.0.0.1:15434 -token demo)
echo "$shardout" | grep -q "shard 1 primary 127.0.0.1:5435" \
  || { echo "docs_smoke: served shard map does not match the README example"; exit 1; }

# --- 2b. The scatter-gather walkthrough: a real two-shard cluster,
# the examples/scatter program against it, and its output diffed
# byte-for-byte against the README's block — the EXPLAIN plan lines
# (Scatter/Gateway/Fragment) and the merged GROUP BY counts are the
# prose's claims.
cat > "$workdir/shards2.conf" <<'EOF'
version 1
table events key k
shard 0 primary 127.0.0.1:15436
shard 1 primary 127.0.0.1:15437
EOF
"$workdir/bin/ifdb-server" -addr 127.0.0.1:15436 -token demo \
  -shard-id 0 -shard-map "$workdir/shards2.conf" \
  >"$workdir/server-s0.log" 2>&1 &
"$workdir/bin/ifdb-server" -addr 127.0.0.1:15437 -token demo \
  -shard-id 1 -shard-map "$workdir/shards2.conf" \
  >"$workdir/server-s1.log" 2>&1 &
for port in 15436 15437; do
  for i in $(seq 1 50); do
    if "$workdir/bin/ifdb-cli" -addr 127.0.0.1:$port -token demo </dev/null >/dev/null 2>&1; then
      break
    fi
    sleep 0.1
  done
done
awk '/<!-- scatter-out-begin -->/{f=1;next} /<!-- scatter-out-end -->/{f=0} f' README.md \
  | sed '/^```/d' > "$workdir/scatter.want"
if ! grep -q "Scatter \[shards=2" "$workdir/scatter.want"; then
  echo "docs_smoke: README scatter walkthrough output not found (markers moved?)" >&2
  exit 1
fi
go run ./examples/scatter -addr 127.0.0.1:15436 -token demo > "$workdir/scatter.got"
if ! diff -u "$workdir/scatter.want" "$workdir/scatter.got"; then
  echo "docs_smoke: examples/scatter output drifted from the README block" >&2
  exit 1
fi

# --- 3. The Monitoring walkthrough: a durable server with
# -metrics-listen must serve a Prometheus scrape carrying the WAL and
# IFC series the README shows, with real fsyncs counted.
"$workdir/bin/ifdb-server" -addr 127.0.0.1:15435 -token demo \
  -datadir "$workdir/data" -metrics-listen 127.0.0.1:19090 \
  -log-level info -slow-query 50ms \
  >"$workdir/server-metrics.log" 2>&1 &
for i in $(seq 1 50); do
  if "$workdir/bin/ifdb-cli" -addr 127.0.0.1:15435 -token demo </dev/null >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
printf 'CREATE TABLE m (k BIGINT PRIMARY KEY);\nINSERT INTO m VALUES (1);\n' \
  | "$workdir/bin/ifdb-cli" -addr 127.0.0.1:15435 -token demo >/dev/null
scrape=$(curl -sf http://127.0.0.1:19090/metrics)
echo "$scrape" | grep -qE '^ifdb_wal_fsync_total [1-9]' \
  || { echo "docs_smoke: /metrics missing nonzero ifdb_wal_fsync_total"; exit 1; }
echo "$scrape" | grep -q '^ifdb_ifc_label_denials_total ' \
  || { echo "docs_smoke: /metrics missing ifdb_ifc_label_denials_total"; exit 1; }
echo "$scrape" | grep -q '^ifdb_server_active_sessions ' \
  || { echo "docs_smoke: /metrics missing ifdb_server_active_sessions"; exit 1; }

# --- 3b. The "Benchmarking & workload simulation" walkthrough: the
# README's record → replay → diff cycle must work end to end (tiny
# duration; numbers are irrelevant, the flags and files are the claim).
"$workdir/bin/ifdb-bench" -exp prepared -seed 7 -duration 50ms \
  -record "$workdir/traces" -json "$workdir/bench.json" >/dev/null
[ -s "$workdir/traces/prepared.trace" ] \
  || { echo "docs_smoke: -record produced no trace"; exit 1; }
grep -q '"schema": 2' "$workdir/bench.json" \
  || { echo "docs_smoke: -json report missing schema marker"; exit 1; }
"$workdir/bin/ifdb-bench" -exp prepared -replay "$workdir/traces" >/dev/null \
  || { echo "docs_smoke: -replay failed on a just-recorded trace"; exit 1; }
"$workdir/bin/ifdb-bench" -diff -diff-threshold 10 \
  "$workdir/bench.json" "$workdir/bench.json" \
  | grep -q "0 regressions" \
  || { echo "docs_smoke: -diff self-comparison reported regressions"; exit 1; }

# --- 4. Flag drift: every -flag the README's sh blocks pass to the
# binaries must still exist in some binary's -h output.
help=$({ "$workdir/bin/ifdb-server" -h; "$workdir/bin/ifdb-cli" -h; "$workdir/bin/ifdb-bench" -h; } 2>&1 || true)
flags=$(awk '/^```sh$/{f=1;next} /^```/{f=0} f && /ifdb-|^[[:space:]]*-/' README.md \
  | grep -oE '(^|[[:space:]])-[a-z][a-z-]*' | sed -E 's/^[[:space:]]*-//' | sort -u)
for f in $flags; do
  echo "$help" | grep -qE "^[[:space:]]*-$f\b" \
    || { echo "docs_smoke: README mentions flag -$f, not found in any binary's -h"; exit 1; }
done

echo "docs_smoke: README quickstart, shard map, scatter walkthrough, metrics scrape, and flags all check out"
