#!/usr/bin/env bash
# bench_smoke.sh — keep the perf-trajectory harness honest.
#
# CI runs every sim-backed ifdb-bench experiment at a short duration,
# then asserts the three properties the harness is sold on:
#
#   1. determinism — recording the same seed twice yields byte-identical
#      traces for every experiment, and a -replay run consumes them;
#   2. the JSON report parses under the current schema and carries the
#      groups and registry delta the diff tool needs;
#   3. -diff compares the fresh report against the committed baseline
#      (BENCH_6.json, legacy schema) without erroring.
#
# Numbers from a 2s run are noise; nothing here gates on throughput.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/bin/" ./cmd/ifdb-bench

BENCH="$workdir/bin/ifdb-bench"
EXPS="prepared,replica-read,shard-write,mixed-tenant"

# --- 1. Determinism: same seed, two recordings, byte-identical traces.
"$BENCH" -exp "$EXPS" -duration 50ms -seed 7 -record "$workdir/t1" >/dev/null
"$BENCH" -exp "$EXPS" -duration 50ms -seed 7 -record "$workdir/t2" >/dev/null
for exp in prepared replica-read shard-write mixed-tenant; do
  if ! cmp -s "$workdir/t1/$exp.trace" "$workdir/t2/$exp.trace"; then
    echo "bench_smoke: trace for $exp is not deterministic across recordings" >&2
    exit 1
  fi
done

# An open-loop arrival process must be just as replayable.
"$BENCH" -exp prepared -arrival poisson -rate 500 -duration 200ms -seed 9 \
  -record "$workdir/p1" >/dev/null
"$BENCH" -exp prepared -arrival poisson -rate 500 -duration 200ms -seed 9 \
  -record "$workdir/p2" >/dev/null
cmp -s "$workdir/p1/prepared.trace" "$workdir/p2/prepared.trace" || {
  echo "bench_smoke: poisson trace is not deterministic" >&2; exit 1; }

# --- 2. Replay the recorded traces and emit the schema-2 JSON report.
# large-result and scatter-agg ride along: neither is schedule-driven
# (no trace), but their groups and notes — executor time-to-first-row,
# distributed-aggregate bytes-on-wire — must land in the same report
# the diff tool consumes.
"$BENCH" -exp "$EXPS,large-result,scatter-agg" -duration 1s -replay "$workdir/t1" \
  -json "$workdir/BENCH_smoke.json" >/dev/null

grep -q '"schema": 2' "$workdir/BENCH_smoke.json" || {
  echo "bench_smoke: report missing schema 2 marker" >&2; exit 1; }
for needle in '"experiments"' '"groups"' '"registry"' '"p99_us"' \
              'mixed-tenant' 'ifdb_router_shard_routed_total' \
              'large-result' 'stream_ttfr_p50_us' 'streaming executor' \
              'scatter-agg' 'rows_bytes_4shards_partial-agg' \
              'ifdb_wire_rows_bytes_total'; do
  grep -q "$needle" "$workdir/BENCH_smoke.json" || {
    echo "bench_smoke: report missing $needle" >&2; exit 1; }
done

# Self-diff doubles as a schema parse check (Load runs on both sides)
# and must report zero regressions.
"$BENCH" -diff "$workdir/BENCH_smoke.json" "$workdir/BENCH_smoke.json" \
  > "$workdir/selfdiff.out"
grep -q "0 regressions" "$workdir/selfdiff.out" || {
  echo "bench_smoke: self-diff reported regressions" >&2
  cat "$workdir/selfdiff.out" >&2
  exit 1
}

# --- 3. Diff against the committed baselines: the legacy schema-1
# file must load and compare cleanly, and the current baseline
# (BENCH_8.json, which includes large-result) must share groups with
# the fresh report (exit 0; the verdict is for humans).
"$BENCH" -diff BENCH_6.json "$workdir/BENCH_smoke.json" > "$workdir/diff.out"
grep -q "compared metrics" "$workdir/diff.out" || {
  echo "bench_smoke: legacy baseline diff produced no comparison summary" >&2
  cat "$workdir/diff.out" >&2
  exit 1
}
"$BENCH" -diff BENCH_8.json "$workdir/BENCH_smoke.json" > "$workdir/diff8.out"
grep -q "compared metrics" "$workdir/diff8.out" || {
  echo "bench_smoke: BENCH_8 baseline diff produced no comparison summary" >&2
  cat "$workdir/diff8.out" >&2
  exit 1
}
grep -q "large-result" "$workdir/diff8.out" || {
  echo "bench_smoke: BENCH_8 diff did not compare the large-result groups" >&2
  cat "$workdir/diff8.out" >&2
  exit 1
}
"$BENCH" -diff BENCH_10.json "$workdir/BENCH_smoke.json" > "$workdir/diff10.out"
grep -q "compared metrics" "$workdir/diff10.out" || {
  echo "bench_smoke: BENCH_10 baseline diff produced no comparison summary" >&2
  cat "$workdir/diff10.out" >&2
  exit 1
}
grep -q "scatter-agg" "$workdir/diff10.out" || {
  echo "bench_smoke: BENCH_10 diff did not compare the scatter-agg groups" >&2
  cat "$workdir/diff10.out" >&2
  exit 1
}

echo "bench_smoke: OK (determinism, schema, baseline diffs)"
