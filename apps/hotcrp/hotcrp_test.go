package hotcrp

import (
	"bytes"
	"strings"
	"testing"

	"ifdb"
)

func setupConf(t *testing.T) (*App, *User, *User, *User) {
	t.Helper()
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	app, err := Setup(db)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	cathy, err := app.Register(1, "Cathy", "Chairwoman", "cathy@conf.org", "MIT", true)
	if err != nil {
		t.Fatal(err)
	}
	pete, err := app.Register(2, "Pete", "Programcommittee", "pete@conf.org", "CMU", true)
	if err != nil {
		t.Fatal(err)
	}
	aaron, err := app.Register(3, "Aaron", "Author", "aaron@uni.edu", "Uni", false)
	if err != nil {
		t.Fatal(err)
	}
	return app, cathy, pete, aaron
}

// TestPCMembersView checks the declassifying view (§4.3): names
// visible to an empty-label process; the base table is not.
func TestPCMembersView(t *testing.T) {
	app, _, _, aaron := setupConf(t)
	s := app.DB.NewSession(aaron.Principal)

	res, err := s.Exec(`SELECT firstname, lastname FROM pcmembers ORDER BY lastname`)
	if err != nil {
		t.Fatalf("pcmembers view: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("pc names: got %d rows, want 2", len(res.Rows))
	}
	// View rows come out with the contact tags stripped: public.
	for _, l := range res.RowLabels {
		if !l.IsEmpty() {
			t.Fatalf("view row label %v, want empty", l)
		}
	}

	// The base table yields nothing to the same process.
	res, err = s.Exec(`SELECT * FROM contactinfo`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("base contactinfo leaked %d rows", len(res.Rows))
	}
}

// TestViewAuthorityRequired: only a principal with all_contacts
// authority may create the declassifying view.
func TestViewAuthorityRequired(t *testing.T) {
	app, _, _, aaron := setupConf(t)
	s := app.DB.NewSession(aaron.Principal)
	_, err := s.Exec(`CREATE VIEW sneaky AS SELECT email FROM contactinfo WITH DECLASSIFYING (all_contacts)`)
	if err == nil {
		t.Fatal("unauthorized declassifying view was created")
	}
}

// TestReviewConflicts: a conflicted PC member cannot see reviews of
// their own paper even after DelegateReviews.
func TestReviewConflicts(t *testing.T) {
	app, cathy, pete, aaron := setupConf(t)
	if err := app.SubmitPaper(100, "Pete's Paper", pete); err != nil {
		t.Fatal(err)
	}
	if err := app.DeclareConflict(100, pete.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := app.SubmitReview(1000, 100, cathy, 4, "solid work"); err != nil {
		t.Fatal(err)
	}
	if err := app.DelegateReviews(); err != nil {
		t.Fatal(err)
	}

	// Cathy (author of the review, non-conflicted) sees it.
	var out bytes.Buffer
	if err := app.RT.ServeRequest(cathy.Principal, app.ReviewsPage, map[string]string{"paper": "100"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "score 4") {
		t.Fatalf("chair can't see review: %q", out.String())
	}

	// Pete is conflicted: he was not delegated the tag, so the page
	// reads the review but cannot declassify — blank output.
	out.Reset()
	if err := app.RT.ServeRequest(pete.Principal, app.ReviewsPage, map[string]string{"paper": "100"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "score 4") {
		t.Fatalf("conflicted PC member saw review: %q", out.String())
	}

	// Aaron (not PC) also gets nothing.
	out.Reset()
	if err := app.RT.ServeRequest(aaron.Principal, app.ReviewsPage, map[string]string{"paper": "100"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "score 4") {
		t.Fatalf("outsider saw review: %q", out.String())
	}
}

// TestDecisionHiddenUntilRelease reproduces the sort-leak bug the
// paper reintroduced (§6.2): before release, the decision tuple is
// invisible, so sorting by decision reveals nothing.
func TestDecisionHiddenUntilRelease(t *testing.T) {
	app, _, _, aaron := setupConf(t)
	if err := app.SubmitPaper(7, "Aaron's Paper", aaron); err != nil {
		t.Fatal(err)
	}
	if err := app.RecordDecision(7, "accept"); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := app.RT.ServeRequest(aaron.Principal, app.SearchPage, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "paper 7") {
		t.Fatalf("paper missing from search: %q", out.String())
	}
	if strings.Contains(out.String(), "accept") {
		t.Fatalf("decision leaked pre-release: %q", out.String())
	}

	if err := app.ReleaseDecisions(); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := app.RT.ServeRequest(aaron.Principal, app.DecisionsPage, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "accept") {
		t.Fatalf("released decision not visible: %q", out.String())
	}
}

// TestContactLabelConstraint: the LABEL EXACTLY constraint on
// contactinfo rejects mislabeled inserts (§5.2.4).
func TestContactLabelConstraint(t *testing.T) {
	app, _, _, aaron := setupConf(t)
	s := app.DB.NewSession(aaron.Principal)
	// Empty label but contact_tag column says the tuple should carry
	// aaron's tag: constraint must reject.
	_, err := s.Exec(`INSERT INTO contactinfo VALUES (99, 'X', 'Y', 'x@y', '1', 'Z', $1)`,
		ifdb.Int(int64(uint64(aaron.ContactTag))))
	if err == nil {
		t.Fatal("mislabeled contactinfo insert accepted")
	}
}

// TestOwnContactPage: a user reads and releases their own contact row.
func TestOwnContactPage(t *testing.T) {
	app, _, pete, _ := setupConf(t)
	var out bytes.Buffer
	if err := app.RT.ServeRequest(pete.Principal, app.ContactPage, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pete@conf.org") {
		t.Fatalf("own contact page: %q", out.String())
	}
}
