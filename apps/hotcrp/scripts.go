package hotcrp

import (
	"ifdb"
	"ifdb/platform"
)

// Untrusted web scripts. As in the CarTel port, none of this code
// holds authority; what each user can see is decided entirely by the
// labels and the authority state.

// PCListPage renders the program committee list through the PCMembers
// declassifying view. Any user — even with an empty label — gets the
// names, and only the names: the paper's bug that exposed full contact
// info for all users (§6.2) is structurally impossible because the
// view projects two columns and strips all_contacts only for them.
func (a *App) PCListPage(pr *platform.Process, _ map[string]string) error {
	res, err := pr.Session().Exec(`SELECT firstname, lastname FROM pcmembers ORDER BY lastname`)
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		pr.Printf("pc: %v %v\n", row[0], row[1])
	}
	return nil
}

// ReviewsPage shows the reviews of one paper to a PC member. The
// script contaminates itself with each review tag it can obtain
// authority for; conflicted members lack the delegation and the rows
// simply do not appear (Query by Label), mirroring how the HotCRP port
// eliminated the premature-decision bugs (§6.2).
func (a *App) ReviewsPage(pr *platform.Process, args map[string]string) error {
	u, ok := a.userOf(pr)
	if !ok {
		return nil
	}
	_ = u
	paperID := argInt(args, "paper")
	for _, r := range a.reviewTagsFor(paperID) {
		// Raising the label is free; the question is whether we can
		// later declassify to release the output.
		if err := pr.AddSecrecy(r.Tag); err != nil {
			return err
		}
	}
	res, err := pr.Session().Exec(
		`SELECT reviewid, score, comments FROM reviews WHERE paperid = $1 ORDER BY reviewid`,
		ifdb.Int(paperID))
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		pr.Printf("review %v: score %v: %v\n", row[0], row[1], row[2])
	}
	// Declassify what we may; if any read tag lacks authority the
	// output guard drops the page.
	pr.DeclassifyAll()
	return nil
}

// SearchPage is the paper search that once leaked decisions via
// sorting (§6.2). It left-joins decisions: for an author before
// release, the decision tuple is invisible, so the join yields NULL
// rather than an error — the outer-join NULLing pattern the paper
// highlights in §6.3.
func (a *App) SearchPage(pr *platform.Process, args map[string]string) error {
	if _, ok := a.userOf(pr); !ok {
		return nil
	}
	res, err := pr.Session().Exec(
		`SELECT p.paperid, p.title, d.outcome
		 FROM papers p LEFT JOIN decisions d ON p.paperid = d.paperid
		 ORDER BY d.outcome DESC, p.paperid`)
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		pr.Printf("paper %v (%v): decision=%v\n", row[0], row[1], row[2])
	}
	return nil
}

// DecisionsPage shows released decisions (public copies).
func (a *App) DecisionsPage(pr *platform.Process, _ map[string]string) error {
	res, err := pr.Session().Exec(`SELECT paperid, outcome FROM decisions_public ORDER BY paperid`)
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		pr.Printf("paper %v: %v\n", row[0], row[1])
	}
	return nil
}

// ContactPage shows the acting user their own contact info.
func (a *App) ContactPage(pr *platform.Process, _ map[string]string) error {
	u, ok := a.userOf(pr)
	if !ok {
		return nil
	}
	if err := pr.AddSecrecy(u.ContactTag); err != nil {
		return err
	}
	res, err := pr.Session().Exec(
		`SELECT firstname, lastname, email, phone, affiliation FROM contactinfo WHERE contactid = $1`,
		ifdb.Int(u.ID))
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		pr.Printf("%v %v <%v> %v, %v\n", row[0], row[1], row[2], row[3], row[4])
	}
	return pr.Declassify(u.ContactTag)
}

func (a *App) userOf(pr *platform.Process) (*User, bool) {
	p := pr.Principal()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, u := range a.users {
		if u.Principal == p {
			return u, true
		}
	}
	return nil, false
}

func argInt(args map[string]string, key string) int64 {
	var n int64
	for _, c := range args[key] {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	return n
}
