// Package hotcrp is a port of the HotCRP conference-management system
// (paper §6.2) to IFDB. The DIFC policy protects contact information,
// paper reviews, and acceptance decisions:
//
//   - each user u has a tag u_contact (member of the all_contacts
//     compound) on their ContactInfo tuple;
//   - each review has its own tag, owned by its author and delegated
//     to the program chair, who later delegates it to non-conflicted
//     PC members;
//   - each paper's acceptance decision has a per-paper tag held by the
//     chair until decisions are officially released.
//
// The PCMembers declassifying view distills public PC names out of the
// sensitive ContactInfo table — the paper's flagship example of
// binding authority to a view definition (§4.3).
//
// THIS FILE IS THE TRUSTED BASE: tag setup, labeling of incoming data,
// and authority closures. The scripts in scripts.go hold no authority.
package hotcrp

import (
	"fmt"
	"sync"

	"ifdb"
	"ifdb/platform"
)

// App is one conference instance.
type App struct {
	DB *ifdb.DB
	RT *platform.Runtime

	chairPrincipal ifdb.Principal
	allContacts    ifdb.Tag

	mu       sync.Mutex
	users    map[int64]*User
	reviews  map[int64]*Review // reviewid -> tags
	decision map[int64]ifdb.Tag
}

// User is one registered account.
type User struct {
	ID         int64
	Name       string
	Principal  ifdb.Principal
	ContactTag ifdb.Tag
	IsPC       bool
}

// Review records the tag protecting one review.
type Review struct {
	ID       int64
	PaperID  int64
	Reviewer int64
	Tag      ifdb.Tag
}

// Setup builds the schema and the trusted policy objects.
func Setup(db *ifdb.DB) (*App, error) {
	a := &App{
		DB: db, RT: platform.New(db),
		users:    make(map[int64]*User),
		reviews:  make(map[int64]*Review),
		decision: make(map[int64]ifdb.Tag),
	}
	admin := db.AdminSession()
	ddl := `
	CREATE TABLE contactinfo (
		contactid BIGINT PRIMARY KEY,
		firstname TEXT, lastname TEXT,
		email TEXT, phone TEXT, affiliation TEXT,
		contact_tag BIGINT,
		CONSTRAINT contact_label LABEL EXACTLY (contact_tag)
	);
	CREATE TABLE pc (
		contactid BIGINT PRIMARY KEY
	);
	CREATE TABLE papers (
		paperid BIGINT PRIMARY KEY,
		title TEXT NOT NULL,
		authorid BIGINT,
		submitted BIGINT
	);
	CREATE TABLE conflicts (
		paperid BIGINT NOT NULL,
		contactid BIGINT NOT NULL,
		PRIMARY KEY (paperid, contactid)
	);
	CREATE TABLE reviews (
		reviewid BIGINT PRIMARY KEY,
		paperid BIGINT NOT NULL,
		reviewerid BIGINT NOT NULL,
		score BIGINT,
		comments TEXT
	);
	CREATE INDEX reviews_paper ON reviews (paperid);
	CREATE TABLE decisions (
		paperid BIGINT PRIMARY KEY,
		outcome TEXT
	);
	CREATE TABLE decisions_public (
		paperid BIGINT PRIMARY KEY,
		outcome TEXT
	);
	`
	if _, err := admin.Exec(ddl); err != nil {
		return nil, fmt.Errorf("hotcrp: schema: %w", err)
	}

	a.chairPrincipal = db.CreatePrincipal("hotcrp-chair")
	chair := db.NewSession(a.chairPrincipal)
	var err error
	if a.allContacts, err = chair.CreateTag("all_contacts"); err != nil {
		return nil, err
	}

	// is_pc_member backs the PCMembers declassifying view's WHERE
	// clause, as in the paper's CREATE VIEW example (§4.3).
	if err := db.RegisterProc("is_pc_member", isPCMemberProc); err != nil {
		return nil, err
	}
	// The chair owns all_contacts, so the chair may create the
	// declassifying view distilling PC names from ContactInfo.
	if _, err := chair.Exec(`
		CREATE VIEW pcmembers AS
		SELECT firstname, lastname FROM contactinfo
		WHERE is_pc_member(contactid)
		WITH DECLASSIFYING (all_contacts)`); err != nil {
		return nil, fmt.Errorf("hotcrp: pcmembers view: %w", err)
	}
	return a, nil
}

func isPCMemberProc(s *ifdb.Session, args []ifdb.Value) (ifdb.Value, error) {
	if len(args) != 1 {
		return ifdb.Null, fmt.Errorf("is_pc_member(contactid)")
	}
	_, found, err := s.QueryRow(`SELECT contactid FROM pc WHERE contactid = $1`, args[0])
	if err != nil {
		return ifdb.Null, err
	}
	return ifdb.Bool(found), nil
}

// Register creates an account: principal, contact tag (member of
// all_contacts), and the labeled ContactInfo tuple.
func (a *App) Register(id int64, first, last, email, affiliation string, isPC bool) (*User, error) {
	p := a.DB.CreatePrincipal("hotcrp:" + email)
	us := a.DB.NewSession(p)
	ct, err := us.CreateTag(fmt.Sprintf("c%d_contact", id), "all_contacts")
	if err != nil {
		return nil, err
	}
	// Label the contact data with the user's tag before writing —
	// trusted labeling code (§6.3: ~50 lines of this per app).
	if err := us.AddSecrecy(ct); err != nil {
		return nil, err
	}
	if _, err := us.Exec(`INSERT INTO contactinfo VALUES ($1, $2, $3, $4, $5, $6, $7)`,
		ifdb.Int(id), ifdb.Text(first), ifdb.Text(last), ifdb.Text(email),
		ifdb.Text("555-0100"), ifdb.Text(affiliation), ifdb.Int(int64(uint64(ct)))); err != nil {
		return nil, err
	}
	if isPC {
		admin := a.DB.AdminSession()
		if _, err := admin.Exec(`INSERT INTO pc VALUES ($1)`, ifdb.Int(id)); err != nil {
			return nil, err
		}
	}
	u := &User{ID: id, Name: first + " " + last, Principal: p, ContactTag: ct, IsPC: isPC}
	a.mu.Lock()
	a.users[id] = u
	a.mu.Unlock()
	return u, nil
}

// User returns a registered user.
func (a *App) User(id int64) (*User, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u, ok := a.users[id]
	return u, ok
}

// SubmitPaper records a paper (paper metadata is public in this port;
// anonymity would add an author tag in the same pattern).
func (a *App) SubmitPaper(paperID int64, title string, author *User) error {
	s := a.DB.NewSession(author.Principal)
	_, err := s.Exec(`INSERT INTO papers VALUES ($1, $2, $3, 1)`,
		ifdb.Int(paperID), ifdb.Text(title), ifdb.Int(author.ID))
	return err
}

// DeclareConflict records a conflict of interest.
func (a *App) DeclareConflict(paperID, contactID int64) error {
	admin := a.DB.AdminSession()
	_, err := admin.Exec(`INSERT INTO conflicts VALUES ($1, $2)`,
		ifdb.Int(paperID), ifdb.Int(contactID))
	return err
}

// SubmitReview stores a review under a fresh per-review tag owned by
// the reviewer and delegated to the chair (§6.2).
func (a *App) SubmitReview(reviewID, paperID int64, reviewer *User, score int64, comments string) (*Review, error) {
	s := a.DB.NewSession(reviewer.Principal)
	rt, err := s.CreateTag(fmt.Sprintf("r%d_review", reviewID))
	if err != nil {
		return nil, err
	}
	if err := s.Delegate(a.chairPrincipal, rt); err != nil {
		return nil, err
	}
	if err := s.AddSecrecy(rt); err != nil {
		return nil, err
	}
	if _, err := s.Exec(`INSERT INTO reviews VALUES ($1, $2, $3, $4, $5)`,
		ifdb.Int(reviewID), ifdb.Int(paperID), ifdb.Int(reviewer.ID),
		ifdb.Int(score), ifdb.Text(comments)); err != nil {
		return nil, err
	}
	r := &Review{ID: reviewID, PaperID: paperID, Reviewer: reviewer.ID, Tag: rt}
	a.mu.Lock()
	a.reviews[reviewID] = r
	a.mu.Unlock()
	a.RT.Cache().Invalidate()
	return r, nil
}

// DelegateReviews is the chair's authority closure from §6.2: it
// delegates each review's tag to the eligible (non-conflicted) PC
// members. Run by the chair.
func (a *App) DelegateReviews() error {
	chair := a.DB.NewSession(a.chairPrincipal)
	a.mu.Lock()
	reviews := make([]*Review, 0, len(a.reviews))
	for _, r := range a.reviews {
		reviews = append(reviews, r)
	}
	users := make([]*User, 0, len(a.users))
	for _, u := range a.users {
		users = append(users, u)
	}
	a.mu.Unlock()

	for _, r := range reviews {
		// Eligible = PC member with no conflict on the paper.
		for _, u := range users {
			if !u.IsPC {
				continue
			}
			row, conflicted, err := chair.QueryRow(
				`SELECT paperid FROM conflicts WHERE paperid = $1 AND contactid = $2`,
				ifdb.Int(r.PaperID), ifdb.Int(u.ID))
			if err != nil {
				return err
			}
			_ = row
			if conflicted {
				continue
			}
			if err := chair.Delegate(u.Principal, r.Tag); err != nil {
				return err
			}
		}
	}
	a.RT.Cache().Invalidate()
	return nil
}

// RecordDecision stores an acceptance decision under a per-paper tag
// held by the chair until release (§6.2).
func (a *App) RecordDecision(paperID int64, outcome string) error {
	chair := a.DB.NewSession(a.chairPrincipal)
	dt, err := chair.CreateTag(fmt.Sprintf("p%d_decision", paperID))
	if err != nil {
		return err
	}
	if err := chair.AddSecrecy(dt); err != nil {
		return err
	}
	if _, err := chair.Exec(`INSERT INTO decisions VALUES ($1, $2)`,
		ifdb.Int(paperID), ifdb.Text(outcome)); err != nil {
		return err
	}
	a.mu.Lock()
	a.decision[paperID] = dt
	a.mu.Unlock()
	return nil
}

// ReleaseDecisions publishes all decisions: the chair reads them
// (contaminating itself with every decision tag), declassifies — its
// own tags — and writes the public copies.
func (a *App) ReleaseDecisions() error {
	chair := a.DB.NewSession(a.chairPrincipal)
	a.mu.Lock()
	tags := make(map[int64]ifdb.Tag, len(a.decision))
	for k, v := range a.decision {
		tags[k] = v
	}
	a.mu.Unlock()
	for pid, dt := range tags {
		if err := chair.AddSecrecy(dt); err != nil {
			return err
		}
		row, found, err := chair.QueryRow(`SELECT outcome FROM decisions WHERE paperid = $1`, ifdb.Int(pid))
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		outcome := row[0]
		if err := chair.Declassify(dt); err != nil {
			return err
		}
		if _, err := chair.Exec(`INSERT INTO decisions_public VALUES ($1, $2)`,
			ifdb.Int(pid), outcome); err != nil {
			return err
		}
	}
	return nil
}

// reviewTagsFor returns the tags of reviews on a paper.
func (a *App) reviewTagsFor(paperID int64) []*Review {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []*Review
	for _, r := range a.reviews {
		if r.PaperID == paperID {
			out = append(out, r)
		}
	}
	return out
}
