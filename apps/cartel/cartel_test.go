package cartel

import (
	"bytes"
	"strings"
	"testing"

	"ifdb"
)

func setupApp(t *testing.T) (*App, *User, *User) {
	t.Helper()
	ResetCountersForTest()
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	app, err := Setup(db)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	alice, err := app.Register(1, "alice", "pw-a", "alice@example.com")
	if err != nil {
		t.Fatalf("register alice: %v", err)
	}
	bob, err := app.Register(2, "bob", "pw-b", "bob@example.com")
	if err != nil {
		t.Fatalf("register bob: %v", err)
	}
	if err := app.AddCar(10, alice.ID, "ALICE-1"); err != nil {
		t.Fatal(err)
	}
	if err := app.AddCar(20, bob.ID, "BOB-1"); err != nil {
		t.Fatal(err)
	}
	return app, alice, bob
}

func ingestTrace(t *testing.T, app *App, u *User, car int64, n int, baseTS int64) {
	t.Helper()
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Lat: 42.36 + float64(i)*0.001, Lon: -71.09, TS: baseTS + int64(i)*30}
	}
	if err := app.IngestBatch(u, car, pts); err != nil {
		t.Fatalf("ingest: %v", err)
	}
}

// TestPipeline verifies the trigger-driven drive derivation and its
// labels: locations at {drives, loc}, drives at {drives} only.
func TestPipeline(t *testing.T) {
	app, alice, _ := setupApp(t)
	ingestTrace(t, app, alice, 10, 10, 1000)
	// A second batch after a gap opens a second drive.
	ingestTrace(t, app, alice, 10, 5, 10000)

	// Alice can see her drives after contaminating for them.
	s := app.DB.NewSession(alice.Principal)
	if err := s.AddSecrecy(alice.DrivesTag); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT driveid, npoints FROM drives ORDER BY driveid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d drives, want 2", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 10 || res.Rows[1][1].Int() != 5 {
		t.Fatalf("drive point counts: %v, %v", res.Rows[0][1], res.Rows[1][1])
	}
	// Drive rows carry exactly {alice_drives} — the location tag was
	// declassified by the closure.
	for _, l := range res.RowLabels {
		if l.Len() != 1 || !l.Has(alice.DrivesTag) {
			t.Fatalf("drive label %v, want {alice_drives}", l)
		}
	}

	// Without the location tag, LocationsLatest stays hidden.
	res, err = s.Exec(`SELECT * FROM locationslatest`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("locationslatest visible without location tag")
	}
	if err := s.AddSecrecy(alice.LocTag); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Exec(`SELECT * FROM locationslatest`)
	if len(res.Rows) != 1 {
		t.Fatalf("locationslatest rows = %d, want 1", len(res.Rows))
	}
}

// TestScriptsOutputGuard runs the web scripts and checks both the
// happy path and the leak-prevention path (the paper's URL
// manipulation attack, §6.1).
func TestScriptsOutputGuard(t *testing.T) {
	app, alice, bob := setupApp(t)
	ingestTrace(t, app, alice, 10, 8, 1000)
	ingestTrace(t, app, bob, 20, 8, 1000)

	// Alice sees her own cars.
	var out bytes.Buffer
	if err := app.RT.ServeRequest(alice.Principal, app.GetCars, nil, &out); err != nil {
		t.Fatalf("get_cars: %v", err)
	}
	if !strings.Contains(out.String(), "car=10") {
		t.Fatalf("get_cars output missing car: %q", out.String())
	}

	// Mallory (Bob) manipulates the URL to view Alice's drives without
	// being her friend: the script reads them, cannot declassify, and
	// the platform drops the output.
	out.Reset()
	if err := app.RT.ServeRequest(bob.Principal, app.Drives, map[string]string{"friend": "1"}, &out); err != nil {
		t.Fatalf("drives attack errored: %v", err)
	}
	if strings.Contains(out.String(), "drives for user 1") {
		t.Fatalf("leak: bob saw alice's drives: %q", out.String())
	}

	// After Alice befriends Bob (delegating alice_drives), it works.
	if err := app.Befriend(alice, bob); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := app.RT.ServeRequest(bob.Principal, app.Drives, map[string]string{"friend": "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "drives for user 1") {
		t.Fatalf("friend cannot see delegated drives: %q", out.String())
	}

	// drives_top publishes only the declassified aggregate.
	out.Reset()
	if err := app.RT.ServeRequest(alice.Principal, app.DrivesTop, nil, &out); err != nil {
		t.Fatalf("drives_top: %v", err)
	}
	if !strings.Contains(out.String(), "pattern") {
		t.Fatalf("drives_top produced no stats: %q", out.String())
	}

	// Unauthenticated principal gets nothing from any script.
	nobody := app.DB.CreatePrincipal("nobody")
	out.Reset()
	if err := app.RT.ServeRequest(nobody, app.GetCars, nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("unauthenticated output: %q", out.String())
	}
}

func TestAuthenticate(t *testing.T) {
	app, alice, _ := setupApp(t)
	if _, ok := app.Authenticate("alice", "wrong"); ok {
		t.Fatal("bad password accepted")
	}
	u, ok := app.Authenticate("alice", "pw-a")
	if !ok || u.ID != alice.ID {
		t.Fatal("good password rejected")
	}
	if got := describe(u); !strings.Contains(got, "alice") {
		t.Fatalf("describe: %q", got)
	}
}
