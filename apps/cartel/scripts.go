package cartel

import (
	"fmt"
	"strconv"

	"ifdb"
	"ifdb/platform"
)

// This file contains the CarTel web scripts of Fig. 3 — the UNTRUSTED
// application code. None of it holds authority beyond what the acting
// user's principal carries; if any script reads data it cannot
// declassify, the platform's output interposition drops the response.

// userOf extracts the acting user from request args; scripts that skip
// authentication (as twelve of the original CarTel scripts did) simply
// run with no authority and produce no sensitive output.
func (a *App) userOf(pr *platform.Process) (*User, bool) {
	p := pr.Principal()
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, u := range a.users {
		if u.Principal == p {
			return u, true
		}
	}
	return nil, false
}

// GetCars is get_cars.php: the AJAX endpoint polling current car
// locations (50% of requests). It reads LocationsLatest, which carries
// {u_drives, u_location}; the owner declassifies both to respond.
func (a *App) GetCars(pr *platform.Process, _ map[string]string) error {
	u, ok := a.userOf(pr)
	if !ok {
		return nil // unauthenticated: no authority, no output
	}
	if err := pr.AddSecrecy(u.DrivesTag); err != nil {
		return err
	}
	if err := pr.AddSecrecy(u.LocTag); err != nil {
		return err
	}
	res, err := pr.Session().Exec(
		`SELECT c.carid, ll.lat, ll.lon, ll.ts
		 FROM cars c JOIN locationslatest ll ON c.carid = ll.carid
		 WHERE c.userid = $1`, ifdb.Int(u.ID))
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		pr.Printf("car=%v lat=%v lon=%v ts=%v\n", row[0], row[1], row[2], row[3])
	}
	if err := pr.Declassify(u.LocTag); err != nil {
		return err
	}
	return pr.Declassify(u.DrivesTag)
}

// Cars is cars.php: the car-locations page (30%). Same data as
// GetCars plus car metadata and rendering.
func (a *App) Cars(pr *platform.Process, _ map[string]string) error {
	u, ok := a.userOf(pr)
	if !ok {
		return nil
	}
	if err := pr.AddSecrecy(u.DrivesTag); err != nil {
		return err
	}
	if err := pr.AddSecrecy(u.LocTag); err != nil {
		return err
	}
	res, err := pr.Session().Exec(
		`SELECT c.carid, c.plate, ll.lat, ll.lon, ll.ts
		 FROM cars c LEFT JOIN locationslatest ll ON c.carid = ll.carid
		 WHERE c.userid = $1 ORDER BY c.carid`, ifdb.Int(u.ID))
	if err != nil {
		return err
	}
	pr.Printf("<h1>%s's cars</h1>\n", u.Name)
	for _, row := range res.Rows {
		pr.Printf("<tr><td>%v</td><td>%v</td><td>%v,%v</td><td>%v</td></tr>\n",
			row[0], row[1], row[2], row[3], row[4])
	}
	if err := pr.Declassify(u.LocTag); err != nil {
		return err
	}
	return pr.Declassify(u.DrivesTag)
}

// Drives is drives.php: the drive log (8%), including friends' drives.
// The script contaminates itself with its own drives tag plus the tag
// of each friend who delegated, then declassifies what it is allowed
// to. If the user coerces the page into reading a non-friend's drives
// (the paper's URL-manipulation bug), the declassify fails and the
// response never leaves the platform.
func (a *App) Drives(pr *platform.Process, args map[string]string) error {
	u, ok := a.userOf(pr)
	if !ok {
		return nil
	}
	ids := []int64{u.ID}
	tags := []ifdb.Tag{u.DrivesTag}

	// Friends who delegated their drives tag to us. (An attacker can
	// pass an arbitrary "friend" arg — exactly the original bug — and
	// the output guard will eat the response.)
	if fid, ok := args["friend"]; ok {
		if n, err := strconv.ParseInt(fid, 10, 64); err == nil {
			if fu, ok := a.UserByID(n); ok {
				ids = append(ids, fu.ID)
				tags = append(tags, fu.DrivesTag)
			}
		}
	} else {
		res, err := pr.Session().Exec(
			`SELECT userid FROM friends WHERE frienduserid = $1`, ifdb.Int(u.ID))
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			if fu, ok := a.UserByID(row[0].Int()); ok {
				ids = append(ids, fu.ID)
				tags = append(tags, fu.DrivesTag)
			}
		}
	}

	for _, t := range tags {
		if err := pr.AddSecrecy(t); err != nil {
			return err
		}
	}
	for _, id := range ids {
		res, err := pr.Session().Exec(
			`SELECT d.driveid, d.start_ts, d.end_ts, d.distance
			 FROM cars c JOIN drives d ON d.carid = c.carid
			 WHERE c.userid = $1 ORDER BY d.start_ts DESC LIMIT 20`, ifdb.Int(id))
		if err != nil {
			return err
		}
		pr.Printf("drives for user %d:\n", id)
		for _, row := range res.Rows {
			pr.Printf("  drive %v: %v..%v %.2f km\n", row[0], row[1], row[2], row[3].Float())
		}
	}
	for _, t := range tags {
		if err := pr.Declassify(t); err != nil {
			// No authority for this tag (non-friend): leave the
			// process contaminated; Release will drop the output.
			return nil
		}
	}
	return nil
}

// DrivesTop is drives_top.php: common driving patterns across all
// users (8%). It runs under the cartel_stats authority closure:
// contaminate with the all_drives compound, aggregate, declassify the
// summary (§3.2's "average speed of all users" pattern).
func (a *App) DrivesTop(pr *platform.Process, _ map[string]string) error {
	if _, ok := a.userOf(pr); !ok {
		return nil
	}
	return pr.CallClosure("cartel_stats", func() error {
		if err := pr.AddSecrecy(a.allDrives); err != nil {
			return err
		}
		res, err := pr.Session().Exec(
			`SELECT npoints, COUNT(*) AS n, AVG(distance) AS avg_km
			 FROM drives GROUP BY npoints ORDER BY n DESC LIMIT 10`)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			pr.Printf("pattern len=%v count=%v avg=%v\n", row[0], row[1], row[2])
		}
		// The aggregate is safe to publish; the closure's authority
		// for all_drives covers every member tag.
		return pr.Declassify(a.allDrives)
	})
}

// Friends is friends.php: view and set friends (3%). The friends list
// itself is public; adding a friend delegates the drives tag, which
// requires an empty label — conveniently true at request start.
func (a *App) Friends(pr *platform.Process, args map[string]string) error {
	u, ok := a.userOf(pr)
	if !ok {
		return nil
	}
	if name, ok := args["add"]; ok {
		if fu, ok := a.UserByName(name); ok && fu.ID != u.ID {
			if err := a.Befriend(u, fu); err != nil {
				return err
			}
			pr.Printf("added friend %s\n", name)
		}
	}
	res, err := pr.Session().Exec(
		`SELECT u.username FROM friends f JOIN users u ON f.userid = u.userid
		 WHERE f.frienduserid = $1 ORDER BY u.username`, ifdb.Int(u.ID))
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		pr.Printf("friend: %v\n", row[0])
	}
	return nil
}

// EditAccount is edit_account.php: personal info (1%). The users row
// is public in this port (the paper's CarTel protected location data;
// contact data would get its own tags as in HotCRP).
func (a *App) EditAccount(pr *platform.Process, args map[string]string) error {
	u, ok := a.userOf(pr)
	if !ok {
		return nil
	}
	if email, ok := args["email"]; ok {
		if _, err := pr.Session().Exec(
			`UPDATE users SET email = $2 WHERE userid = $1`,
			ifdb.Int(u.ID), ifdb.Text(email)); err != nil {
			return err
		}
	}
	row, _, err := pr.Session().QueryRow(
		`SELECT username, email FROM users WHERE userid = $1`, ifdb.Int(u.ID))
	if err != nil {
		return err
	}
	pr.Printf("account %v email=%v\n", row[0], row[1])
	return nil
}

// Login is login.php: authenticate and report. It exists so the
// latency experiment (Fig. 5) has all seven scripts.
func (a *App) Login(pr *platform.Process, args map[string]string) error {
	u, ok := a.Authenticate(args["user"], args["password"])
	if !ok {
		pr.Printf("login failed\n")
		return nil
	}
	pr.Printf("welcome %s\n", u.Name)
	return nil
}

// Handlers returns the script table keyed by the names in Fig. 3.
func (a *App) Handlers() map[string]platform.Handler {
	return map[string]platform.Handler{
		"get_cars.php":     a.GetCars,
		"cars.php":         a.Cars,
		"drives.php":       a.Drives,
		"drives_top.php":   a.DrivesTop,
		"friends.php":      a.Friends,
		"edit_account.php": a.EditAccount,
		"login.php":        a.Login,
	}
}

// describe is a helper for examples.
func describe(u *User) string { return fmt.Sprintf("user %d (%s)", u.ID, u.Name) }
