// Package cartel is a port of the CarTel mobile sensor network's web
// application (paper §6.1) to IFDB: cars upload GPS measurements, a
// trigger-driven pipeline turns them into drives, and a small web
// portal shows users their own (and their friends') data.
//
// The information flow design follows the paper exactly. Each user u
// has two tags:
//
//   - u_drives   — covers u's historical drives (member of all_drives)
//   - u_location — covers u's current location (member of all_locations)
//
// Raw GPS measurements get the label {u_drives, u_location}: they
// reveal both the drive and the current position. Derived drives get
// {u_drives}, so a user can share drive history with friends (by
// delegating u_drives) without exposing current location.
//
// THIS FILE IS THE TRUSTED BASE of the application: it creates tags,
// labels incoming data, and registers the authority closures. Per the
// paper's accounting (§6.3), everything else — the scripts, the
// pipeline logic — runs without authority and cannot leak what it
// reads. The trusted-base experiment (E6) counts the lines in this
// file against the whole application.
package cartel

import (
	"fmt"
	"sync"

	"ifdb"
	"ifdb/platform"
)

// App is one CarTel deployment.
type App struct {
	DB *ifdb.DB
	RT *platform.Runtime

	// appPrincipal owns the compound tags; pipelinePrincipal is the
	// closure identity with authority for all_locations only.
	appPrincipal      ifdb.Principal
	pipelinePrincipal ifdb.Principal
	statsPrincipal    ifdb.Principal

	allDrives    ifdb.Tag
	allLocations ifdb.Tag

	mu    sync.Mutex
	users map[string]*User
}

// User is one registered CarTel user with their principal and tags.
type User struct {
	ID        int64
	Name      string
	Principal ifdb.Principal
	DrivesTag ifdb.Tag
	LocTag    ifdb.Tag
}

// Setup creates the schema, compound tags, pipeline principals, and
// authority closures. It must run before any requests.
func Setup(db *ifdb.DB) (*App, error) {
	a := &App{DB: db, RT: platform.New(db), users: make(map[string]*User)}

	admin := db.AdminSession()
	ddl := `
	CREATE TABLE users (
		userid   BIGINT PRIMARY KEY,
		username TEXT UNIQUE NOT NULL,
		password TEXT NOT NULL,
		email    TEXT,
		drives_tag   BIGINT,
		location_tag BIGINT
	);
	CREATE TABLE cars (
		carid  BIGINT PRIMARY KEY,
		userid BIGINT NOT NULL REFERENCES users (userid),
		plate  TEXT
	);
	CREATE INDEX cars_user ON cars (userid);
	CREATE TABLE locations (
		locid BIGINT PRIMARY KEY,
		carid BIGINT NOT NULL,
		lat DOUBLE PRECISION, lon DOUBLE PRECISION,
		ts BIGINT
	);
	CREATE INDEX locations_car ON locations (carid, ts);
	CREATE TABLE locationslatest (
		carid BIGINT PRIMARY KEY,
		lat DOUBLE PRECISION, lon DOUBLE PRECISION,
		ts BIGINT
	);
	CREATE TABLE drives (
		driveid BIGINT PRIMARY KEY,
		carid BIGINT NOT NULL,
		start_ts BIGINT, end_ts BIGINT,
		distance DOUBLE PRECISION,
		npoints BIGINT,
		last_lat DOUBLE PRECISION, last_lon DOUBLE PRECISION
	);
	CREATE INDEX drives_car ON drives (carid, end_ts);
	CREATE TABLE friends (
		userid BIGINT NOT NULL REFERENCES users (userid),
		frienduserid BIGINT NOT NULL REFERENCES users (userid),
		PRIMARY KEY (userid, frienduserid)
	);
	`
	if _, err := admin.Exec(ddl); err != nil {
		return nil, fmt.Errorf("cartel: schema: %w", err)
	}

	a.appPrincipal = db.CreatePrincipal("cartel-app")
	var err error
	appSess := db.NewSession(a.appPrincipal)
	if a.allDrives, err = appSess.CreateTag("all_drives"); err != nil {
		return nil, err
	}
	if a.allLocations, err = appSess.CreateTag("all_locations"); err != nil {
		return nil, err
	}

	// The pipeline closure principal gets authority for all_locations
	// only: it can remove location tags while deriving drives, but can
	// never declassify drive history (§6.1).
	a.pipelinePrincipal = db.CreatePrincipal("cartel-pipeline")
	if err := appSess.Delegate(a.pipelinePrincipal, a.allLocations); err != nil {
		return nil, err
	}
	// The statistics closure can declassify all_drives to publish
	// aggregate traffic data (the paper's "average speed of all CarTel
	// users on a road" example, §3.2).
	a.statsPrincipal = db.CreatePrincipal("cartel-stats")
	if err := appSess.Delegate(a.statsPrincipal, a.allDrives); err != nil {
		return nil, err
	}

	// driveupdate runs as a stored authority closure attached to the
	// locations AFTER INSERT trigger (§6.1): it reads the raw
	// measurement, maintains LocationsLatest, declassifies the
	// location tag, and extends or opens the drive.
	if err := db.RegisterClosureProc("driveupdate", driveUpdateProc,
		a.appPrincipal, a.pipelinePrincipal, ifdb.NewLabel(a.allLocations)); err != nil {
		return nil, err
	}
	if _, err := admin.Exec(`CREATE TRIGGER locations_driveupdate AFTER INSERT ON locations EXECUTE PROCEDURE driveupdate`); err != nil {
		return nil, err
	}

	// drives_top's aggregate runs under this closure (authority for
	// all_drives, to declassify the statistical summary).
	if err := db.RegisterClosure("cartel_stats", a.appPrincipal, a.statsPrincipal,
		ifdb.NewLabel(a.allDrives)); err != nil {
		return nil, err
	}
	return a, nil
}

// Register creates a user: their principal, their two tags (members
// of the app compounds), and their row in users. This is trusted
// labeling code: it decides which tags protect whose data.
func (a *App) Register(id int64, name, password, email string) (*User, error) {
	p := a.DB.CreatePrincipal("user:" + name)
	us := a.DB.NewSession(p)
	dt, err := us.CreateTag(fmt.Sprintf("u%d_drives", id), "all_drives")
	if err != nil {
		return nil, err
	}
	lt, err := us.CreateTag(fmt.Sprintf("u%d_location", id), "all_locations")
	if err != nil {
		return nil, err
	}
	admin := a.DB.AdminSession()
	if _, err := admin.Exec(
		`INSERT INTO users VALUES ($1, $2, $3, $4, $5, $6)`,
		ifdb.Int(id), ifdb.Text(name), ifdb.Text(password), ifdb.Text(email),
		ifdb.Int(int64(uint64(dt))), ifdb.Int(int64(uint64(lt))),
	); err != nil {
		return nil, err
	}
	u := &User{ID: id, Name: name, Principal: p, DrivesTag: dt, LocTag: lt}
	a.mu.Lock()
	a.users[name] = u
	a.mu.Unlock()
	return u, nil
}

// AddCar registers a car for a user.
func (a *App) AddCar(carID, userID int64, plate string) error {
	admin := a.DB.AdminSession()
	_, err := admin.Exec(`INSERT INTO cars VALUES ($1, $2, $3)`,
		ifdb.Int(carID), ifdb.Int(userID), ifdb.Text(plate))
	return err
}

// Authenticate is the application's authentication routine — part of
// the trusted base (Fig. 1). It returns the user's principal only on a
// correct password; every handler that skips this runs with no
// authority and therefore cannot release anything sensitive (the
// paper's twelve unauthenticated scripts became harmless, §6.1).
func (a *App) Authenticate(name, password string) (*User, bool) {
	a.mu.Lock()
	u, ok := a.users[name]
	a.mu.Unlock()
	if !ok {
		return nil, false
	}
	s := a.DB.AdminSession()
	row, found, err := s.QueryRow(`SELECT password FROM users WHERE username = $1`, ifdb.Text(name))
	if err != nil || !found {
		return nil, false
	}
	if row[0].Text() != password {
		return nil, false
	}
	return u, true
}

// UserByID looks up a registered user.
func (a *App) UserByID(id int64) (*User, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, u := range a.users {
		if u.ID == id {
			return u, true
		}
	}
	return nil, false
}

// UserByName looks up a registered user by name.
func (a *App) UserByName(name string) (*User, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u, ok := a.users[name]
	return u, ok
}

// Befriend lets owner allow friend to see their past drives by
// delegating the owner's drives tag (not the location tag: friends
// see drive history, never current location — the paper's policy).
func (a *App) Befriend(owner, friend *User) error {
	s := a.DB.NewSession(owner.Principal)
	if err := s.Delegate(friend.Principal, owner.DrivesTag); err != nil {
		return err
	}
	admin := a.DB.AdminSession()
	if _, err := admin.Exec(`INSERT INTO friends VALUES ($1, $2)`,
		ifdb.Int(owner.ID), ifdb.Int(friend.ID)); err != nil {
		return err
	}
	a.RT.Cache().Invalidate()
	return nil
}
