package cartel

import (
	"fmt"
	"math"
	"sync/atomic"

	"ifdb"
)

// Point is one GPS measurement.
type Point struct {
	Lat, Lon float64
	TS       int64 // seconds
}

// driveGapSeconds separates two drives: a gap longer than this closes
// the current drive and the next point opens a new one.
const driveGapSeconds = 300

var locIDs, driveIDs atomic.Int64

// driveUpdateProc is the trigger body behind the locations AFTER
// INSERT trigger. It is registered as a stored authority closure bound
// to the pipeline principal (authority for all_locations): it can
// declassify location tags while deriving drives, but anything it
// derives remains contaminated with the user's drives tag — it cannot
// leak drive history no matter how buggy it is (§6.1).
//
// Note this function is NOT part of the trusted base: it exercises
// only the authority its closure was granted.
func driveUpdateProc(s *ifdb.Session, _ []ifdb.Value) (ifdb.Value, error) {
	return ifdb.Null, driveUpdate(s)
}

func driveUpdate(s *ifdb.Session) error {
	ctx := s.TriggerContext()
	if ctx == nil || ctx.Event != "INSERT" {
		return fmt.Errorf("driveupdate: not an insert trigger")
	}
	carID := ctx.New[1]
	lat := ctx.New[2].Float()
	lon := ctx.New[3].Float()
	ts := ctx.New[4].Int()

	// Maintain LocationsLatest at the raw-measurement label
	// {u_drives, u_location}.
	res, err := s.Exec(`UPDATE locationslatest SET lat = $2, lon = $3, ts = $4 WHERE carid = $1`,
		carID, ctx.New[2], ctx.New[3], ctx.New[4])
	if err != nil {
		return err
	}
	if res.Affected == 0 {
		if _, err := s.Exec(`INSERT INTO locationslatest VALUES ($1, $2, $3, $4)`,
			carID, ctx.New[2], ctx.New[3], ctx.New[4]); err != nil {
			return err
		}
	}

	// Look up the owner's tags (users and cars are public rows; the
	// tag *ids* are not secret, the data they protect is).
	row, ok, err := s.QueryRow(
		`SELECT u.location_tag, u.drives_tag FROM cars c JOIN users u ON c.userid = u.userid WHERE c.carid = $1`,
		carID)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("driveupdate: car %v has no owner", carID)
	}
	locTag := ifdb.Tag(uint64(row[0].Int()))

	// Declassify the location tag (closure authority via
	// all_locations) so the drive is written at exactly {u_drives}.
	if err := s.Declassify(locTag); err != nil {
		return err
	}

	// Extend the open drive or start a new one.
	drv, found, err := s.QueryRow(
		`SELECT driveid, end_ts, distance, npoints, last_lat, last_lon
		 FROM drives WHERE carid = $1 ORDER BY end_ts DESC LIMIT 1`, carID)
	if err != nil {
		return err
	}
	if found && ts-drv[1].Int() <= driveGapSeconds {
		dist := drv[2].Float() + flatDistanceKM(drv[4].Float(), drv[5].Float(), lat, lon)
		_, err = s.Exec(
			`UPDATE drives SET end_ts = $2, distance = $3, npoints = $4, last_lat = $5, last_lon = $6 WHERE driveid = $1`,
			drv[0], ifdb.Int(ts), ifdb.Float(dist), ifdb.Int(drv[3].Int()+1), ctx.New[2], ctx.New[3])
		return err
	}
	_, err = s.Exec(`INSERT INTO drives VALUES ($1, $2, $3, $4, 0.0, 1, $5, $6)`,
		ifdb.Int(driveIDs.Add(1)), carID, ifdb.Int(ts), ifdb.Int(ts), ctx.New[2], ctx.New[3])
	return err
}

// flatDistanceKM approximates the distance between two coordinates
// (equirectangular projection — fine at city scale).
func flatDistanceKM(lat1, lon1, lat2, lon2 float64) float64 {
	const kmPerDegree = 111.32
	dx := (lon2 - lon1) * kmPerDegree * math.Cos((lat1+lat2)/2*math.Pi/180)
	dy := (lat2 - lat1) * kmPerDegree
	return math.Sqrt(dx*dx + dy*dy)
}

// IngestBatch stores a batch of measurements for one car, as the
// CarTel ingest path does: one transaction per batch (the paper used
// 200 inserts per transaction, §8.2.2). The labeling decision — raw
// measurements get {u_drives, u_location} — is trusted code; the
// pipeline that runs under it is not.
func (a *App) IngestBatch(u *User, carID int64, points []Point) error {
	s := a.DB.NewSession(a.pipelinePrincipal)
	if err := s.Begin(0); err != nil {
		return err
	}
	for _, p := range points {
		// Label incoming data: raw GPS reveals both the drive and the
		// current location (§6.1).
		if err := s.AddSecrecy(u.DrivesTag); err != nil {
			s.Abort()
			return err
		}
		if err := s.AddSecrecy(u.LocTag); err != nil {
			s.Abort()
			return err
		}
		if _, err := s.Exec(`INSERT INTO locations VALUES ($1, $2, $3, $4, $5)`,
			ifdb.Int(locIDs.Add(1)), ifdb.Int(carID),
			ifdb.Float(p.Lat), ifdb.Float(p.Lon), ifdb.Int(p.TS)); err != nil {
			s.Abort()
			return err
		}
	}
	return s.Commit()
}

// ResetCountersForTest resets the id allocators (benchmark setup).
func ResetCountersForTest() {
	locIDs.Store(0)
	driveIDs.Store(0)
}
