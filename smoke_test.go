package ifdb_test

import (
	"errors"
	"testing"

	"ifdb"
)

// TestSmoke exercises the paper's running examples end to end:
// Query by Label visibility, the Write Rule, declassification with
// authority, polyinstantiation, and the commit-label rule.
func TestSmoke(t *testing.T) {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE hivpatients (
		patient_name TEXT,
		patient_dob  TEXT,
		notes        TEXT,
		PRIMARY KEY (patient_name, patient_dob)
	)`); err != nil {
		t.Fatalf("create table: %v", err)
	}

	alice := db.CreatePrincipal("alice")
	bob := db.CreatePrincipal("bob")
	aliceTag, err := db.CreateTag(alice, "alice_medical")
	if err != nil {
		t.Fatal(err)
	}
	bobTag, err := db.CreateTag(bob, "bob_medical")
	if err != nil {
		t.Fatal(err)
	}

	// Insert Bob's record at {bob_medical}.
	sb := db.NewSession(bob)
	if err := sb.AddSecrecy(bobTag); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Exec(`INSERT INTO hivpatients VALUES ('Bob', '6/26/78', 'r1')`); err != nil {
		t.Fatalf("insert bob: %v", err)
	}

	// A process with label {bob_medical} sees Bob's tuple.
	res, err := sb.Exec(`SELECT * FROM hivpatients WHERE patient_name = 'Bob'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("bob-labeled session: got %d rows, want 1", len(res.Rows))
	}

	// An empty-label process sees nothing (Label Confinement Rule).
	sa := db.NewSession(alice)
	res, err = sa.Exec(`SELECT * FROM hivpatients WHERE patient_name = 'Bob'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("empty-label session: got %d rows, want 0", len(res.Rows))
	}

	// Alice raises to {alice_medical}; still cannot see Bob's row.
	if err := sa.AddSecrecy(aliceTag); err != nil {
		t.Fatal(err)
	}
	res, _ = sa.Exec(`SELECT * FROM hivpatients`)
	if len(res.Rows) != 0 {
		t.Fatalf("alice-labeled session sees bob's tuple")
	}

	// Polyinstantiation (§5.2.1): Alice, running with an empty label…
	// actually with {alice_medical}, inserts (Bob, 6/26/78) — the
	// conflicting tuple is invisible to her, so the insert must
	// succeed rather than leak its existence.
	if _, err := sa.Exec(`INSERT INTO hivpatients VALUES ('Bob', '6/26/78', 'dup')`); err != nil {
		t.Fatalf("polyinstantiated insert should succeed: %v", err)
	}

	// Bob, contaminated for both tags, sees both versions.
	if err := sb.AddSecrecy(aliceTag); err != nil {
		t.Fatal(err)
	}
	res, _ = sb.Exec(`SELECT * FROM hivpatients WHERE patient_name = 'Bob'`)
	if len(res.Rows) != 2 {
		t.Fatalf("polyinstantiation: got %d rows, want 2", len(res.Rows))
	}

	// A *visible* conflict still fails.
	sb2 := db.NewSession(bob)
	if err := sb2.AddSecrecy(bobTag); err != nil {
		t.Fatal(err)
	}
	if _, err := sb2.Exec(`INSERT INTO hivpatients VALUES ('Bob', '6/26/78', 'again')`); !errors.Is(err, ifdb.ErrUnique) {
		t.Fatalf("visible conflict: got %v, want ErrUnique", err)
	}

	// Write Rule: a process contaminated above a tuple's label cannot
	// update it.
	if _, err := sb.Exec(`UPDATE hivpatients SET notes = 'x' WHERE patient_name = 'Bob' AND notes = 'r1'`); !errors.Is(err, ifdb.ErrWriteRule) {
		t.Fatalf("write rule: got %v, want ErrWriteRule", err)
	}

	// Declassify: Bob has authority for bob_medical but not alice_medical.
	if err := sb.Declassify(bobTag); err != nil {
		t.Fatalf("declassify own tag: %v", err)
	}
	if err := sb.Declassify(aliceTag); !errors.Is(err, ifdb.ErrAuthority) {
		t.Fatalf("declassify foreign tag: got %v, want ErrAuthority", err)
	}
}

// TestCommitLabelRule reproduces the §5.1 attack verbatim and checks
// the commit-label rule stops it.
func TestCommitLabelRule(t *testing.T) {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	admin := db.AdminSession()
	mustExec(t, admin, `CREATE TABLE foo (msg TEXT)`)
	mustExec(t, admin, `CREATE TABLE hivpatients (pname TEXT PRIMARY KEY)`)

	alice := db.CreatePrincipal("alice")
	aliceTag, _ := db.CreateTag(alice, "alice_medical")

	// Alice's record exists at {alice_medical}.
	sa := db.NewSession(alice)
	if err := sa.AddSecrecy(aliceTag); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sa, `INSERT INTO hivpatients VALUES ('Alice')`)

	// The attacker (no authority) writes a public tuple, raises its
	// label, reads the secret, and tries to commit conditionally.
	mallory := db.CreatePrincipal("mallory")
	sm := db.NewSession(mallory)
	if _, err := sm.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, sm, `INSERT INTO foo VALUES ('Alice has HIV')`)
	if err := sm.AddSecrecy(aliceTag); err != nil {
		t.Fatal(err)
	}
	res, err := sm.Exec(`SELECT * FROM hivpatients WHERE pname = 'Alice'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("contaminated attacker should see the row")
	}
	// Commit must fail: commit label {alice_medical} exceeds the empty
	// label of the tuple written to foo.
	if _, err := sm.Exec(`COMMIT`); err == nil {
		t.Fatal("commit-label rule: commit should have failed")
	}
	// And the public write must not have survived.
	s2 := db.NewSession(mallory)
	res, _ = s2.Exec(`SELECT * FROM foo`)
	if len(res.Rows) != 0 {
		t.Fatalf("aborted write leaked: %d rows", len(res.Rows))
	}
}

func mustExec(t *testing.T, s *ifdb.Session, q string, params ...ifdb.Value) *ifdb.Result {
	t.Helper()
	res, err := s.Exec(q, params...)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}
