package ifdb_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"ifdb"
)

// TestDurabilityAcrossReopen exercises the public API contract: a
// database opened on a DataDir recovers committed work after an
// unclean reopen — rows, schema, principals, tags, and authority.
func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := ifdb.Open(ifdb.Config{IFC: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE patients (name TEXT PRIMARY KEY, diagnosis TEXT)`); err != nil {
		t.Fatal(err)
	}
	alice := db.CreatePrincipal("alice")
	tag, err := db.CreateTag(alice, "alice_medical")
	if err != nil {
		t.Fatal(err)
	}
	sa := db.NewSession(alice)
	if err := sa.AddSecrecy(tag); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Exec(`INSERT INTO patients VALUES ('Alice', 'HIV')`); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no flush — only the DataDir lock is released,
	// as process death would.
	db.Crash()

	db2, err := ifdb.Open(ifdb.Config{IFC: true, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	alice2, ok := db2.LookupPrincipal("alice")
	if !ok {
		t.Fatal("alice lost")
	}
	tag2, ok := db2.LookupTag("alice_medical")
	if !ok || tag2 != tag {
		t.Fatal("tag lost")
	}
	if !db2.HasAuthority(alice2, tag2) {
		t.Fatal("authority lost")
	}
	pub := db2.AdminSession()
	res, err := pub.Exec(`SELECT * FROM patients`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("label confinement lost after recovery: %d rows", len(res.Rows))
	}
	sa2 := db2.NewSession(alice2)
	if err := sa2.AddSecrecy(tag2); err != nil {
		t.Fatal(err)
	}
	res, err = sa2.Exec(`SELECT diagnosis FROM patients WHERE name = 'Alice'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "HIV" {
		t.Fatalf("committed row lost: %v", res.Rows)
	}
}

// TestGroupCommitSharesFsyncs asserts the group-commit property at
// the API level: 16 concurrent writers commit many transactions with
// far fewer fsyncs than commits.
func TestGroupCommitSharesFsyncs(t *testing.T) {
	db, err := ifdb.Open(ifdb.Config{DataDir: t.TempDir(), SyncMode: "group"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.AdminSession().Exec(`CREATE TABLE t (w BIGINT, i BIGINT)`); err != nil {
		t.Fatal(err)
	}
	const writers, per = 16, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession(db.Admin())
			for i := 0; i < per; i++ {
				if _, err := s.Exec(`INSERT INTO t VALUES ($1, $2)`, ifdb.Int(int64(w)), ifdb.Int(int64(i))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	syncs := db.Engine().WAL().Syncs
	if syncs >= writers*per {
		t.Fatalf("no batching: %d fsyncs for %d commits", syncs, writers*per)
	}
	t.Logf("group commit: %d commits in %d fsyncs", writers*per, syncs)
}

// benchCommits measures committed-transaction throughput at 16
// concurrent writers under the given sync mode. The ISSUE acceptance
// criterion compares BenchmarkCommitGroup16 against
// BenchmarkCommitFsync16: group commit must sustain ≥5× the
// throughput of one-fsync-per-commit.
func benchCommits(b *testing.B, mode string) {
	db, err := ifdb.Open(ifdb.Config{DataDir: b.TempDir(), SyncMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.AdminSession().Exec(`CREATE TABLE t (w BIGINT, i BIGINT)`); err != nil {
		b.Fatal(err)
	}
	const writers = 16
	var next atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession(db.Admin())
			for {
				i := next.Add(1)
				if i > int64(b.N) {
					return
				}
				if _, err := s.Exec(`INSERT INTO t VALUES ($1, $2)`, ifdb.Int(int64(w)), ifdb.Int(i)); err != nil {
					b.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
}

func BenchmarkCommitFsync16(b *testing.B) { benchCommits(b, "commit") }
func BenchmarkCommitGroup16(b *testing.B) { benchCommits(b, "group") }
func BenchmarkCommitOff16(b *testing.B)   { benchCommits(b, "off") }
