// Package ifdb is a from-scratch Go implementation of IFDB, the
// database system with decentralized information flow control (DIFC)
// described in:
//
//	David Schultz and Barbara Liskov.
//	IFDB: Decentralized Information Flow Control for Databases.
//	EuroSys 2013.
//
// IFDB tracks sensitive information as it flows through the DBMS and
// between the application and the DBMS. Every tuple carries an
// immutable label (a set of tags); every process (session) carries a
// label that grows as it reads. The Query by Label model confines each
// query to the tuples whose labels flow to the process label, and
// writes are stamped with exactly the process label. Declassification
// — removing a tag — requires authority, which principals obtain by
// ownership or delegation and exercise directly or through authority
// closures and declassifying views.
//
// # Quick start
//
//	db := ifdb.Open(ifdb.Config{IFC: true})
//	admin := db.AdminSession()
//	admin.Exec(`CREATE TABLE patients (name TEXT PRIMARY KEY, diagnosis TEXT)`)
//
//	alicePrin := db.CreatePrincipal("alice")
//	aliceTag, _ := db.CreateTag(alicePrin, "alice_medical")
//
//	s := db.NewSession(alicePrin)
//	s.AddSecrecy(aliceTag) // contaminate before writing Alice's data
//	s.Exec(`INSERT INTO patients VALUES ('Alice', 'HIV')`)
//	s.Declassify(aliceTag) // Alice's own authority permits this
//
// The engine can also run with IFC disabled (Config.IFC = false), in
// which case it is a plain relational database; every benchmark in
// this repository uses that mode as the "PostgreSQL" baseline, so the
// measured difference is exactly the cost of information flow control.
package ifdb

import (
	"time"

	"ifdb/internal/authority"
	"ifdb/internal/engine"
	"ifdb/internal/label"
	"ifdb/internal/repl"
	"ifdb/internal/types"
)

// Core types re-exported from the internal packages so that
// applications only import ifdb (and ifdb/platform, ifdb/client).
type (
	// Tag identifies one secrecy category (paper §3.1).
	Tag = label.Tag
	// Label is a set of tags.
	Label = label.Label
	// Principal is an entity with security interests (§3.2).
	Principal = authority.Principal
	// Session is a connection with its own process label and principal.
	Session = engine.Session
	// Result is the outcome of one SQL statement.
	Result = engine.Result
	// Value is one SQL datum.
	Value = types.Value
	// TriggerCtx is passed to trigger procedures.
	TriggerCtx = engine.TriggerCtx
	// ProcFunc is the signature of stored procedures.
	ProcFunc = engine.ProcFunc
)

// NoPrincipal is the principal with no authority.
const NoPrincipal = authority.NoPrincipal

// Value constructors, re-exported.
var (
	// Null is the SQL NULL value.
	Null = types.Null
	// Int makes a BIGINT value.
	Int = types.NewInt
	// Float makes a DOUBLE PRECISION value.
	Float = types.NewFloat
	// Text makes a TEXT value.
	Text = types.NewText
	// Bool makes a BOOLEAN value.
	Bool = types.NewBool
	// Time makes a TIMESTAMP value.
	Time = types.NewTime
	// NewLabel builds a normalized label from tags.
	NewLabel = label.New
)

// Errors applications match with errors.Is.
var (
	ErrWriteRule       = engine.ErrWriteRule
	ErrUnique          = engine.ErrUnique
	ErrForeignKey      = engine.ErrForeignKey
	ErrFKAuthority     = engine.ErrFKAuthority
	ErrLabelConstraint = engine.ErrLabelConstraint
	ErrAuthority       = engine.ErrAuthority
	ErrContaminated    = engine.ErrContaminated
	ErrClearance       = engine.ErrClearance
	// ErrReadOnlyReplica rejects writes on a replica opened with
	// Config.ReplicaOf; writes must go to the primary.
	ErrReadOnlyReplica = engine.ErrReadOnlyReplica
	// ErrDataDirLocked means another process owns the data directory.
	ErrDataDirLocked = engine.ErrDataDirLocked
)

// Config configures a database instance.
type Config struct {
	// IFC enables information flow control (the whole point). False
	// yields the plain baseline DBMS used for comparison benchmarks.
	IFC bool
	// LegacyExec routes SELECTs through the pre-planner materializing
	// executor instead of the plan-based streaming one. It exists as
	// the differential-testing oracle and the benchmark baseline for
	// the planner; production configurations leave it false.
	LegacyExec bool
	// DataDir makes the database durable: `USING DISK` tables store
	// heap files there, every mutation is written ahead to
	// DataDir/wal.log, and Open replays the log (crash recovery)
	// before returning. Empty means fully in-memory — disk tables use
	// in-memory page stores (still paged and evicted through the
	// buffer pool) and nothing survives a restart.
	DataDir string
	// BufferPoolPages caps each disk table's buffer pool (default 256).
	BufferPoolPages int
	// SyncMode selects the commit durability discipline when DataDir
	// is set: "off" (no fsync), "commit" (one fsync per commit), or
	// "group" (concurrent commits share fsyncs; the default).
	SyncMode string
	// CheckpointEvery, when positive, periodically snapshots the
	// database state and truncates the write-ahead log. Zero disables
	// the background checkpointer; DB.Checkpoint and DB.Close still
	// checkpoint on demand.
	CheckpointEvery time.Duration

	// ReplicaOf makes this database a read-only replica of the primary
	// whose replication listener is at the given address. Requires
	// DataDir. Open bootstraps (or resumes) the replica and streams
	// the primary's WAL continuously in the background; queries see
	// the replicated state with full IFC label enforcement, and every
	// write is rejected with ErrReadOnlyReplica. Serve a primary's
	// stream with ifdb-server -repl-listen (or repl.NewPrimary).
	ReplicaOf string

	// ReplToken authenticates this replica to the primary (replicas
	// are part of the trusted base, like client platforms).
	ReplToken string

	// ReplRetainBudget caps how many bytes of write-ahead log a
	// lagging replica may pin against checkpoint truncation. Beyond
	// it the replica's slot is dropped — checkpoints truncate freely
	// again, and that replica must re-bootstrap via basebackup when it
	// reconnects. Zero (the default) retains the log for every
	// attached replica indefinitely, which lets one slow follower pin
	// unbounded disk.
	ReplRetainBudget int64
}

// DB is one IFDB database instance.
type DB struct {
	eng      *engine.Engine
	follower *repl.Follower // non-nil when opened with ReplicaOf
}

// Open creates a database. When cfg.DataDir is set it runs crash
// recovery first: committed transactions reappear, in-flight ones are
// rolled back, and the catalog, authority state, and sequences are
// rebuilt. With cfg.ReplicaOf it instead opens a read-only replica
// that follows the named primary. Call Close for a clean shutdown
// (final checkpoint).
func Open(cfg Config) (*DB, error) {
	if cfg.ReplicaOf != "" {
		f, err := repl.Open(repl.Config{
			Addr:             cfg.ReplicaOf,
			Token:            cfg.ReplToken,
			DataDir:          cfg.DataDir,
			IFC:              cfg.IFC,
			SyncMode:         cfg.SyncMode,
			CheckpointEvery:  cfg.CheckpointEvery,
			BufferPoolPages:  cfg.BufferPoolPages,
			ReplRetainBudget: cfg.ReplRetainBudget,
		})
		if err != nil {
			return nil, err
		}
		return &DB{eng: f.Engine(), follower: f}, nil
	}
	eng, err := engine.New(engine.Config{
		IFC:              cfg.IFC,
		LegacyExec:       cfg.LegacyExec,
		DataDir:          cfg.DataDir,
		BufferPoolPages:  cfg.BufferPoolPages,
		SyncMode:         cfg.SyncMode,
		CheckpointEvery:  cfg.CheckpointEvery,
		ReplRetainBudget: cfg.ReplRetainBudget,
	})
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// MustOpen is Open for in-memory configurations that cannot fail
// (tests, examples, benchmarks); it panics on error.
func MustOpen(cfg Config) *DB {
	db, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return db
}

// Close shuts the database down cleanly: it takes a final checkpoint
// and closes the write-ahead log and heap files (a replica also stops
// its replication stream first). A no-op for in-memory databases.
func (db *DB) Close() error {
	if db.follower != nil {
		return db.follower.Close()
	}
	return db.eng.Close()
}

// IsReplica reports whether this database is a read-only replica
// (false again after a successful Promote).
func (db *DB) IsReplica() bool { return db.eng.IsReplica() }

// Promote turns a replica into a writable primary: the replication
// stream stops, in-flight replicated transactions abort, the WAL
// epoch is bumped durably — fencing the old primary, whose stale
// streams every node refuses from here on — and writes open. Open
// sessions stay valid. To let fenced peers rejoin as replicas of this
// node, serve its WAL with repl.NewPrimary(db.Engine()) (what
// ifdb-server's -repl-listen does after promotion).
func (db *DB) Promote() error {
	if db.follower == nil {
		return engine.ErrNotReplica
	}
	return db.follower.Promote()
}

// Epoch returns the WAL promotion generation (0 for in-memory
// databases). Each failover promotion bumps it by one; replication
// positions are only comparable within one epoch.
func (db *DB) Epoch() uint64 { return db.eng.Epoch() }

// ReplicaAppliedLSN returns the primary WAL position this replica has
// applied through (0 when not a replica). Comparing it against the
// primary's DB.WALEnd gauges replication lag.
func (db *DB) ReplicaAppliedLSN() uint64 {
	if db.follower == nil || !db.eng.IsReplica() {
		return 0
	}
	return uint64(db.follower.AppliedLSN())
}

// ReplicationErr returns the fatal error that stopped this replica's
// stream, if any (e.g. it fell behind the primary's retained log and
// must be restarted to re-bootstrap). Nil while healthy.
func (db *DB) ReplicationErr() error {
	if db.follower == nil {
		return nil
	}
	return db.follower.Err()
}

// WALEnd returns the current end of the write-ahead log (0 without a
// DataDir). On a primary this is the position a fully caught-up
// replica converges to.
func (db *DB) WALEnd() uint64 {
	if w := db.eng.WAL(); w != nil {
		return uint64(w.End())
	}
	return 0
}

// Checkpoint forces a checkpoint: snapshot the state, flush dirty
// disk pages, truncate the WAL. A no-op for in-memory databases.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Crash simulates process death for crash-recovery tests: the DataDir
// lock is released (as the kernel would on exit) but nothing is
// flushed, checkpointed, or synced.
func (db *DB) Crash() { db.eng.Crash() }

// Engine exposes the underlying engine for advanced integrations
// (the network server and the benchmark harness use it).
func (db *DB) Engine() *engine.Engine { return db.eng }

// IFC reports whether information flow control is enabled.
func (db *DB) IFC() bool { return db.eng.IFC() }

// Admin returns the administrator principal. Following the Principle
// of Least Privilege (§3.3), the administrator defines schemas but
// holds no tag authority.
func (db *DB) Admin() Principal { return db.eng.Admin() }

// AdminSession opens a session as the administrator.
func (db *DB) AdminSession() *Session { return db.eng.NewSession(db.eng.Admin()) }

// NewSession opens a session acting as principal p with an empty label.
func (db *DB) NewSession(p Principal) *Session { return db.eng.NewSession(p) }

// CreatePrincipal creates a principal.
func (db *DB) CreatePrincipal(name string) Principal { return db.eng.CreatePrincipal(name) }

// CreateTag creates a tag owned by owner, optionally as a member of
// the named compound tags.
func (db *DB) CreateTag(owner Principal, name string, compounds ...string) (Tag, error) {
	return db.eng.CreateTag(owner, name, compounds...)
}

// LookupTag resolves a tag name.
func (db *DB) LookupTag(name string) (Tag, bool) { return db.eng.LookupTag(name) }

// LookupPrincipal finds a principal by its diagnostic name. Durable
// applications use this after reopening a DataDir: principals (and
// their authority) survive restarts, so bootstrap code re-finds them
// instead of creating duplicates.
func (db *DB) LookupPrincipal(name string) (Principal, bool) {
	return db.eng.Authority().PrincipalByName(name)
}

// Delegate grants authority for tag t from grantor to grantee.
// (Grantor-side checks are in the authority state; sessions expose a
// label-checked variant.)
func (db *DB) Delegate(grantor, grantee Principal, t Tag) error {
	return db.eng.Authority().Delegate(grantor, grantee, t)
}

// HasAuthority reports whether p can declassify t.
func (db *DB) HasAuthority(p Principal, t Tag) bool {
	return db.eng.Authority().HasAuthority(p, t)
}

// RegisterProc installs an ordinary stored procedure callable from SQL
// and triggers; it runs with the caller's authority.
func (db *DB) RegisterProc(name string, fn ProcFunc) error {
	return db.eng.RegisterProc(name, fn)
}

// RegisterClosureProc installs a stored authority closure (§4.3):
// code bound to a principal whose authority it exercises when invoked.
// The creator must hold authority for every tag in proves.
func (db *DB) RegisterClosureProc(name string, fn ProcFunc, creator, bound Principal, proves Label) error {
	return db.eng.RegisterClosureProc(name, fn, creator, bound, proves)
}

// RegisterClosure registers a named (non-proc) authority closure that
// sessions invoke with Session.CallClosure.
func (db *DB) RegisterClosure(name string, creator, bound Principal, proves Label) error {
	_, err := db.eng.Closures().Register(name, creator, bound, proves)
	return err
}

// Vacuum reclaims dead tuple versions (exempt from IFC, §7.1).
func (db *DB) Vacuum() int { return db.eng.Vacuum() }

// Stats reports engine-wide counters (tables, tuples, resident bytes).
func (db *DB) Stats() engine.Stats { return db.eng.Stats() }
