package client_test

import (
	"net"
	"testing"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/wire"
)

// TestAutoReconnectResyncsLabel kills a durable server mid-session and
// restarts it on the same port: a Conn with AutoReconnect redials,
// re-syncs its label and principal (the client owns the authoritative
// view, §7.2), and the retried statements behave as if the connection
// had never broken — the contaminated read still sees the secret row,
// and the principal's authority still declassifies.
func TestAutoReconnectResyncsLabel(t *testing.T) {
	dir := t.TempDir()
	db, err := ifdb.Open(ifdb.Config{IFC: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(db.Engine(), "tok")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)

	if _, err := db.AdminSession().Exec(`CREATE TABLE notes (id BIGINT PRIMARY KEY, body TEXT)`); err != nil {
		t.Fatal(err)
	}

	conn, err := client.DialConfig(client.Config{
		Addr: addr, Token: "tok", AutoReconnect: true,
		RedialTimeout: 10 * time.Second, RedialInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	alice, err := conn.CreatePrincipal("alice")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetPrincipal(alice)
	tag, err := conn.CreateTag("alice_notes")
	if err != nil {
		t.Fatal(err)
	}
	conn.AddSecrecy(tag)
	if _, err := conn.Exec(`INSERT INTO notes VALUES (1, 'secret')`); err != nil {
		t.Fatal(err)
	}

	// Kill the server (connections die, state persists in the
	// DataDir), then restart it on the same port.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := ifdb.Open(ifdb.Config{IFC: true, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2 := wire.NewServer(db2.Engine(), "tok")
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relisten on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()

	// The next statement rides the auto-reconnect: the fresh server
	// session starts with an empty label and no principal, so the
	// redial's lazy re-sync is what makes this read see the secret row
	// under alice's tag.
	res, err := conn.Exec(`SELECT body FROM notes WHERE id = 1`)
	if err != nil {
		t.Fatalf("exec across restart: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "secret" {
		t.Fatalf("contaminated read after reconnect: %v", res.Rows)
	}
	if !conn.Label().Equal(client.Label{tag}) {
		t.Fatalf("label lost across reconnect: %v", conn.Label())
	}
	// Principal re-sync: alice's authority still works.
	if err := conn.Declassify(tag); err != nil {
		t.Fatalf("declassify after reconnect: %v", err)
	}
	// Writes work on the reconnected session too.
	if _, err := conn.Exec(`INSERT INTO notes VALUES (2, 'post-restart')`); err != nil {
		t.Fatal(err)
	}

	// A conn *without* AutoReconnect fails outright when its server
	// goes away — the retry is opt-in.
	plain, err := client.Dial(addr, "tok", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	srv2.Close()
	if _, err := plain.Exec(`SELECT 1`); err == nil {
		t.Fatal("plain conn survived server death")
	}
}
