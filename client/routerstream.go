// Router streaming and prepared statements: the Router half of API
// v2. Reads stream — a fan-out read runs through the distplan
// scatter-gather layer (scatter.go): split statements push work to
// the shards and merge at the gateway, everything else concatenates
// the per-shard streams in shard order with a bounded in-flight
// window — and prepared statements route off the shard-key derivation
// computed once at prepare time by the SQL parser (classify.go /
// shardkey.go), executing through per-connection prepared handles.

package client

import (
	"context"
	"errors"
)

// Query routes one statement and streams the result.
func (r *Router) Query(sqlText string, params ...Value) (Rows, error) {
	return r.QueryContext(context.Background(), sqlText, params...)
}

// QueryContext routes one statement and streams the result under
// ctx. Read-only statements stream from the serving node (fan-out
// reads merge the per-shard streams lazily); anything else executes
// exactly like ExecContext and the buffered result is replayed
// through the Rows interface.
func (r *Router) QueryContext(ctx context.Context, sqlText string, params ...Value) (Rows, error) {
	return r.query(ctx, routedStmt{sqlText: sqlText, plan: planFor(sqlText)}, params)
}

func (r *Router) query(ctx context.Context, rs routedStmt, params []Value) (Rows, error) {
	if rs.plan.txnControl {
		return nil, errors.New("client: the Router routes statements independently and cannot carry explicit transactions; dial a Conn to the primary instead (or use the ifdb database/sql driver, whose Tx pins one connection)")
	}
	if !rs.plan.readOnly {
		res, err := r.exec(ctx, rs, params)
		if err != nil {
			return nil, err
		}
		return &bufferedRows{res: res, i: -1}, nil
	}
	if m := r.shardMap(); m != nil {
		if _, keys, ok := rs.plan.shardKeys(m, params); ok {
			if _, single := singleShardOf(m, keys); single {
				return r.readShardedStream(ctx, rs, func(m *ShardMap) (uint32, bool) {
					return singleShardOf(m, keys)
				}, params)
			}
		}
		return r.scatterRows(ctx, rs, params)
	}
	return r.queryRead(ctx, rs, params)
}

// queryRead is read() in streaming form: replicas first (with the
// read-your-writes token), the primary as the fallback. Routing
// failures are retried before the stream is handed out; once rows
// flow, failures surface through the Rows.
func (r *Router) queryRead(ctx context.Context, rs routedStmt, params []Value) (Rows, error) {
	var tok *rwTok
	if !r.cfg.AllowStaleReads {
		tok = r.toksFor(rs).global()
	}
	candidates := r.readCandidates(tok)
	if len(candidates) == 0 {
		r.maybeReprobe()
		candidates = r.readCandidates(tok)
	}
	var lastErr error
	for _, addr := range candidates {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		wait := uint64(0)
		if tok != nil {
			wait = tok.lsn
		}
		rows, err := r.queryOnShard(ctx, rs, addr, wait, 0, params)
		if err == nil {
			return rows, nil
		}
		lastErr = err
		if !retryable(err) {
			if isReadOnlyReplicaErr(err) {
				continue
			}
			if !isWaitTimeoutErr(err) {
				return nil, err
			}
			r.setDown(addr)
			continue
		}
		r.setDown(addr)
		r.maybeReprobe()
	}
	if addr := r.Primary(); addr != "" {
		rows, err := r.queryOnShard(ctx, rs, addr, 0, 0, params)
		if err == nil {
			return rows, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("client: no nodes available")
	}
	return nil, lastErr
}

// openStream borrows nothing: it runs the statement on an
// already-checked-out connection and wires the stream's end to the
// pool — a cleanly finished (or server-failed) stream checks the conn
// back in, a transport failure closes it.
func (r *Router) openStream(ctx context.Context, c *Conn, rs routedStmt, addr string, waitLSN, shardVer uint64, params []Value) (Rows, error) {
	onClose := func(err error) {
		// A canceled statement's connection is not repooled even when
		// the server answered cleanly: the out-of-band CANCEL may still
		// be in flight and could land after the session moves on,
		// killing the next borrower's statement. Closing the conn ends
		// the session, so a late CANCEL targets nothing.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			c.Close()
		} else if err == nil || !retryable(err) {
			r.checkin(addr, c)
		} else {
			c.Close()
		}
	}
	if rs.prepared {
		st, err := c.preparedFor(rs.sqlText)
		if err != nil {
			onClose(err)
			return nil, err
		}
		return c.queryCtx(ctx, st, waitLSN, shardVer, "", params, onClose)
	}
	return c.queryCtx(ctx, nil, waitLSN, shardVer, rs.sqlText, params, onClose)
}

// queryOnShard opens one node's stream with the pool discipline of
// execOnShard (including the stale-pooled-conn fresh-dial retry).
func (r *Router) queryOnShard(ctx context.Context, rs routedStmt, addr string, waitLSN, shardVer uint64, params []Value) (Rows, error) {
	c, pooled, err := r.checkout(addr)
	if err != nil {
		return nil, err
	}
	rows, err := r.openStream(ctx, c, rs, addr, waitLSN, shardVer, params)
	if err != nil && retryable(err) && pooled && !ctxDone(ctx) {
		r.flushPool(addr)
		if c, err = r.dial(addr); err != nil {
			return nil, err
		}
		rows, err = r.openStream(ctx, c, rs, addr, waitLSN, shardVer, params)
	}
	return rows, err
}

// readShardedStream is readSharded in streaming form, with the same
// stale-map discipline: a refusal (which arrives on the stream's
// FIRST frame, before any rows are surfaced) carries the new map,
// which is adopted and the target re-derived for a second attempt.
func (r *Router) readShardedStream(ctx context.Context, rs routedStmt, target func(m *ShardMap) (uint32, bool), params []Value) (Rows, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		m := r.shardMap()
		sid, ok := target(m)
		if !ok {
			break
		}
		var tok *rwTok
		if !r.cfg.AllowStaleReads {
			tok = r.toksFor(rs).shard(sid)
		}
		adopted := false
		candidates := append(r.shardReadCandidates(m, sid, tok), "")
		for _, addr := range candidates {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			wait := uint64(0)
			if tok != nil && addr != "" {
				wait = tok.lsn
			}
			if addr == "" {
				if addr = r.shardPrimary(m, sid); addr == "" {
					continue
				}
			}
			rows, err := r.queryOnShard(ctx, rs, addr, wait, m.Version, params)
			if err == nil {
				return rows, nil
			}
			lastErr = err
			if nm := StaleShardMap(err); nm != nil {
				if nm.Version > m.Version {
					r.adoptMap(nm)
					adopted = true
					break
				}
				continue
			}
			if !retryable(err) {
				if isReadOnlyReplicaErr(err) || isWaitTimeoutErr(err) {
					if isWaitTimeoutErr(err) {
						r.setDown(addr)
					}
					continue
				}
				return nil, err
			}
			r.setDown(addr)
			r.maybeReprobe()
		}
		if !adopted {
			break
		}
	}
	if lastErr == nil {
		lastErr = errors.New("client: no nodes available for the target shard")
	}
	return nil, lastErr
}

// ---------------------------------------------------------------------------
// Buffered replay (non-read statements issued through Query)

// bufferedRows replays an already-buffered Result through the Rows
// interface.
type bufferedRows struct {
	res    *Result
	i      int
	closed bool
}

func (b *bufferedRows) Columns() []string { return b.res.Cols }

func (b *bufferedRows) Next() bool {
	if b.closed {
		return false
	}
	b.i++
	return b.i < len(b.res.Rows)
}

func (b *bufferedRows) Row() []Value {
	if b.i < 0 || b.i >= len(b.res.Rows) {
		return nil
	}
	return b.res.Rows[b.i]
}

func (b *bufferedRows) RowLabel() Label {
	if b.res.RowLabels == nil || b.i < 0 || b.i >= len(b.res.RowLabels) {
		return nil
	}
	return b.res.RowLabels[b.i]
}

func (b *bufferedRows) Scan(dest ...any) error { return scanRow(b.Row(), dest) }
func (b *bufferedRows) Err() error             { return nil }
func (b *bufferedRows) Close() error           { b.closed = true; return nil }

// ---------------------------------------------------------------------------
// Router prepared statements

// RouterStmt is a statement prepared against the cluster: its routing
// plan — classification and shard-key derivation through the real SQL
// parser — is computed once at prepare time, and executions route off
// it, shipping per-connection prepared handles instead of text. The
// plan derives the key from the statement's parameters on every
// execution, so one prepared `INSERT ... VALUES ($1, ...)` hits
// whichever shard each execution's $1 hashes to.
type RouterStmt struct {
	r      *Router
	rs     routedStmt
	closed bool
}

// Prepare analyzes sqlText once and validates it against a reachable
// node (so SQL errors surface now, not on first execution). The
// statement handles themselves are per pooled connection, prepared
// lazily as executions touch each conn.
func (r *Router) Prepare(sqlText string) (*RouterStmt, error) {
	plan := planFor(sqlText)
	if plan.txnControl {
		return nil, errors.New("client: the Router cannot prepare transaction-control statements")
	}
	st := &RouterStmt{r: r, rs: routedStmt{sqlText: sqlText, plan: plan, prepared: true}}
	// Best-effort eager validation on the primary (or shard 0's): a
	// server-side parse error fails Prepare; an unreachable node does
	// not — the statement will prepare lazily when the cluster heals.
	addr := r.Primary()
	if addr == "" {
		if m := r.shardMap(); m != nil {
			addr = r.shardPrimary(m, 0)
		}
	}
	if addr != "" {
		if c, _, err := r.checkout(addr); err == nil {
			_, perr := c.preparedFor(sqlText)
			if perr != nil && retryable(perr) {
				c.Close()
			} else {
				r.checkin(addr, c)
			}
			if perr != nil && !retryable(perr) {
				return nil, perr
			}
		}
	}
	return st, nil
}

// Exec executes the prepared statement, routing by the prepare-time
// plan.
func (s *RouterStmt) Exec(params ...Value) (*Result, error) {
	return s.ExecContext(context.Background(), params...)
}

// ExecContext is Exec with deadline/cancel propagation.
func (s *RouterStmt) ExecContext(ctx context.Context, params ...Value) (*Result, error) {
	if s.closed {
		return nil, &clientError{msg: "client: statement is closed"}
	}
	return s.r.exec(ctx, s.rs, params)
}

// Query executes the prepared statement and streams the result.
func (s *RouterStmt) Query(params ...Value) (Rows, error) {
	return s.QueryContext(context.Background(), params...)
}

// QueryContext is Query with deadline/cancel propagation.
func (s *RouterStmt) QueryContext(ctx context.Context, params ...Value) (Rows, error) {
	if s.closed {
		return nil, &clientError{msg: "client: statement is closed"}
	}
	return s.r.query(ctx, s.rs, params)
}

// SQL returns the statement's text.
func (s *RouterStmt) SQL() string { return s.rs.sqlText }

// Close marks the statement closed. The per-connection handles are
// owned by the conns' caches and stay warm for other statements of
// the same text.
func (s *RouterStmt) Close() error {
	s.closed = true
	return nil
}
