package client

import (
	"testing"

	"ifdb/internal/types"
	"ifdb/internal/wire"
)

func extractionMap() *ShardMap {
	return &wire.ShardMap{
		Version: 1,
		Keys:    map[string]string{"kv": "k", "users": "name"},
		Shards:  []wire.Shard{{ID: 0, Primary: "a:1"}, {ID: 1, Primary: "b:1"}},
	}
}

// TestShardTargetExtraction pins the statement shapes the Router can
// (and deliberately cannot) confine to one shard.
func TestShardTargetExtraction(t *testing.T) {
	m := extractionMap()
	params := []Value{types.NewInt(42), types.NewText("bob")}
	cases := []struct {
		sql       string
		wantTable string
		wantKey   string
		wantOK    bool
	}{
		// INSERT: leading-key convention, explicit columns, params.
		{`INSERT INTO kv VALUES (7, 1)`, "kv", "7", true},
		{`INSERT INTO kv VALUES ($1, $2)`, "kv", "42", true},
		{`INSERT INTO kv (k, v) VALUES (7, 1)`, "kv", "7", true},
		{`INSERT INTO kv (v, k) VALUES (1, 7)`, "kv", "7", true},
		{`insert into kv values (7, 1)`, "kv", "7", true},
		{`INSERT INTO users (name, age) VALUES ('alice', 30)`, "users", "alice", true},
		{`INSERT INTO users (name) VALUES ($2)`, "users", "bob", true},
		{`INSERT INTO users (name) VALUES ('it''s')`, "users", "it's", true},
		// Not derivable: key column absent, multi-row, INSERT..SELECT.
		{`INSERT INTO kv (v) VALUES (1)`, "kv", "", false},
		{`INSERT INTO kv VALUES (1, 2), (3, 4)`, "kv", "", false},
		{`INSERT INTO kv SELECT * FROM old`, "kv", "", false},
		// WHERE key equality for SELECT/UPDATE/DELETE.
		{`SELECT v FROM kv WHERE k = 7`, "kv", "7", true},
		{`SELECT v FROM kv WHERE k = $1`, "kv", "42", true},
		{`SELECT v FROM kv WHERE k = 7 AND v > 2`, "kv", "7", true},
		{`UPDATE kv SET v = v + 1 WHERE k = $1`, "kv", "42", true},
		{`DELETE FROM kv WHERE k = 7`, "kv", "7", true},
		{`SELECT * FROM users WHERE name = 'alice'`, "users", "alice", true},
		// Not confined: no WHERE, OR, expression values, joins,
		// column-name near-misses, unsharded tables.
		{`SELECT v FROM kv`, "kv", "", false},
		{`UPDATE kv SET v = 0`, "kv", "", false},
		{`SELECT v FROM kv WHERE k = 7 OR k = 9`, "kv", "", false},
		// A negation turns key equality into its complement: the
		// statement reaches every shard and must not route by the key.
		{`DELETE FROM kv WHERE NOT k = 7`, "kv", "", false},
		{`SELECT v FROM kv WHERE NOT (k = 7)`, "kv", "", false},
		{"SELECT v FROM kv WHERE v = 2\nOR k = 9", "kv", "", false},
		{`SELECT v FROM kv WHERE v = 2 OR(k = 9)`, "kv", "", false},
		{`SELECT v FROM kv WHERE k = 7 ORDER BY v`, "kv", "", false},
		{`SELECT v FROM kv WHERE k = 7 + 1`, "kv", "", false},
		// String literals must not fool the scan: a quoted 'k = 5' is
		// data, not a predicate (routes by the real k = 7)...
		{`DELETE FROM kv WHERE v = 'k = 5 AND x' AND k = 7`, "kv", "7", true},
		// ...and a quoted ' OR ' is not a disjunction.
		{`SELECT * FROM users WHERE name = 'a OR b'`, "users", "a OR b", true},
		{`SELECT v FROM kv JOIN other ON kv.k = other.k WHERE k = 7`, "kv", "", false},
		{`SELECT v FROM kv WHERE pk = 7`, "kv", "", false},
		{`SELECT v FROM kv WHERE k2 = 7`, "kv", "", false},
		{`SELECT x FROM unsharded WHERE id = 3`, "unsharded", "", false},
	}
	for _, c := range cases {
		table, key, ok := shardTarget(m, c.sql, params)
		if ok != c.wantOK || (ok && key != c.wantKey) || table != c.wantTable {
			t.Errorf("%q: got table=%q key=%q ok=%v, want table=%q key=%q ok=%v",
				c.sql, table, key, ok, c.wantTable, c.wantKey, c.wantOK)
		}
	}
}

// TestShardTargetCanonicalAgreement checks that the extracted literal
// hashes exactly like the datum the server stores — the property the
// whole routing scheme rests on.
func TestShardTargetCanonicalAgreement(t *testing.T) {
	m := extractionMap()
	_, lit, ok := shardTarget(m, `INSERT INTO kv VALUES (1234, 0)`, nil)
	if !ok {
		t.Fatal("literal insert not derivable")
	}
	_, par, ok := shardTarget(m, `INSERT INTO kv VALUES ($1, 0)`, []Value{types.NewInt(1234)})
	if !ok {
		t.Fatal("param insert not derivable")
	}
	if lit != par || wire.ShardKeyHashString(lit) != wire.ShardKeyHash(types.NewInt(1234)) {
		t.Fatalf("canonical forms disagree: literal %q, param %q", lit, par)
	}
}

func TestIsDDL(t *testing.T) {
	for sql, want := range map[string]bool{
		`CREATE TABLE t (id BIGINT)`: true,
		`DROP TABLE t`:               true,
		`ALTER TABLE t ADD c BIGINT`: true,
		`INSERT INTO t VALUES (1)`:   false,
		`SELECT 1`:                   false,
	} {
		if got := planFor(sql).ddl; got != want {
			t.Errorf("planFor(%q).ddl = %v, want %v", sql, got, want)
		}
	}
}
