package client

import (
	"testing"

	"ifdb/internal/types"
	"ifdb/internal/wire"
)

func testMap() *ShardMap {
	return &wire.ShardMap{
		Version: 1,
		Keys:    map[string]string{"kv": "k"},
		Shards: []wire.Shard{
			{ID: 0, Primary: "a:1"},
			{ID: 1, Primary: "b:1"},
		},
	}
}

// planKeys runs the parser-based derivation for one statement.
func planKeys(t *testing.T, sqlText string, params ...Value) (string, []string, bool) {
	t.Helper()
	p := analyzeStmt(sqlText)
	return p.shardKeys(testMap(), params)
}

func TestParserShardKeys(t *testing.T) {
	i := func(v int64) Value { return types.NewInt(v) }
	cases := []struct {
		sql    string
		params []Value
		key    string // first derived key; "" = not derivable
		nkeys  int
	}{
		// The text path's bread and butter still works.
		{`INSERT INTO kv VALUES (7, 'x')`, nil, "7", 1},
		{`INSERT INTO kv (k, v) VALUES ($1, $2)`, []Value{i(9), types.NewText("y")}, "9", 1},
		{`SELECT v FROM kv WHERE k = 5`, nil, "5", 1},
		{`UPDATE kv SET v = 'z' WHERE k = $1`, []Value{i(3)}, "3", 1},
		{`DELETE FROM kv WHERE k = 4 AND v = 'q'`, nil, "4", 1},

		// What the parser path adds: IN lists...
		{`SELECT v FROM kv WHERE k IN (1, 2, 3)`, nil, "1", 3},
		{`SELECT v FROM kv WHERE k IN ($1, $2)`, []Value{i(1), i(2)}, "1", 2},
		// ...quoted identifiers...
		{`SELECT v FROM kv WHERE "k" = 5`, nil, "5", 1},
		// ...and key equality beside an OR-bearing sibling conjunct.
		{`SELECT v FROM kv WHERE k = 5 AND (v = 'a' OR v = 'b')`, nil, "5", 1},

		// Conservative refusals.
		{`SELECT v FROM kv WHERE k = 5 OR k = 6`, nil, "", 0},
		{`SELECT v FROM kv WHERE NOT (k = 5)`, nil, "", 0},
		{`SELECT v FROM kv WHERE k IN (1, v)`, nil, "", 0},       // non-const member
		{`SELECT v FROM kv WHERE k = v`, nil, "", 0},             // no constant
		{`INSERT INTO kv VALUES (1, 'a'), (2, 'b')`, nil, "", 0}, // multi-row
		{`UPDATE kv SET k = 9 WHERE k = 5`, nil, "", 0},          // key reassignment
		{`SELECT v FROM kv WHERE k = (SELECT 1)`, nil, "", 0},    // subquery
		{`SELECT * FROM kv JOIN kv ON 1=1 WHERE k = 5`, nil, "", 0},
	}
	for _, c := range cases {
		table, keys, ok := planKeys(t, c.sql, c.params...)
		if c.key == "" {
			if ok {
				t.Errorf("%q: derived %v, want not derivable", c.sql, keys)
			}
			continue
		}
		if !ok || len(keys) != c.nkeys || keys[0] != c.key {
			t.Errorf("%q: got table=%q keys=%v ok=%v, want %d keys starting %q",
				c.sql, table, keys, ok, c.nkeys, c.key)
		}
	}
}

func TestSingleShardINList(t *testing.T) {
	m := testMap()
	// Find two keys on the same shard and one on the other.
	var same []string
	var other string
	for k := 0; len(same) < 2 || other == ""; k++ {
		ks := types.NewInt(int64(k)).String()
		if m.ShardOf(ks) == 0 {
			if len(same) < 2 {
				same = append(same, ks)
			}
		} else if other == "" {
			other = ks
		}
	}
	if sid, ok := singleShardOf(m, same); !ok || sid != 0 {
		t.Fatalf("same-shard list not routable: %v %v", sid, ok)
	}
	if _, ok := singleShardOf(m, append(same, other)); ok {
		t.Fatal("cross-shard list reported routable")
	}
}

func TestClassifier(t *testing.T) {
	cases := []struct {
		sql                   string
		readOnly, txnCtl, ddl bool
	}{
		{`SELECT * FROM kv`, true, false, false},
		{`SELECT sleep(10)`, true, false, false},
		{`INSERT INTO kv VALUES (1, 'x')`, false, false, false},
		{`BEGIN`, false, true, false},
		{`COMMIT`, false, true, false},
		{`ROLLBACK`, false, true, false},
		{`CREATE TABLE t (id BIGINT)`, false, false, true},
		{`DROP TABLE t`, false, false, true},
		// Side-effectful SELECTs are not read-only.
		{`SELECT addsecrecy(3)`, false, false, false},
		{`SELECT nextval('s')`, false, false, false},
		{`SELECT declassify(1)`, false, false, false},
		// ...even buried in expressions the text scan can't see
		// through reliably.
		{`SELECT 1 + nextval('s') FROM kv WHERE k = 1`, false, false, false},
		// Unparsable input falls back to the text scan.
		{`ALTER TABLE t ADD c BIGINT`, false, false, true},
		// Pure-DDL batches fan out; a batch MIXING DDL with DML must
		// not (its DML would run on shards that don't own the rows) —
		// it is not ddl, and the sharded write path refuses it.
		{`CREATE TABLE a (x BIGINT); CREATE TABLE b (y BIGINT)`, false, false, true},
		{`INSERT INTO kv VALUES (5, 'x'); CREATE INDEX i ON kv (v)`, false, false, false},
	}
	for _, c := range cases {
		p := analyzeStmt(c.sql)
		if p.readOnly != c.readOnly || p.txnControl != c.txnCtl || p.ddl != c.ddl {
			t.Errorf("%q: readOnly=%v txn=%v ddl=%v, want %v %v %v",
				c.sql, p.readOnly, p.txnControl, p.ddl, c.readOnly, c.txnCtl, c.ddl)
		}
	}
}

// TestParserFallbackAgrees: on the statements both paths can handle,
// the parser derivation matches the text scan — the fallback never
// contradicts the primary path.
func TestParserFallbackAgrees(t *testing.T) {
	m := testMap()
	for _, sqlText := range []string{
		`INSERT INTO kv VALUES (7, 'x')`,
		`SELECT v FROM kv WHERE k = 5`,
		`DELETE FROM kv WHERE k = 12`,
	} {
		_, textKey, textOK := shardTarget(m, sqlText, nil)
		_, keys, ok := analyzeStmt(sqlText).shardKeys(m, nil)
		if !textOK || !ok {
			t.Fatalf("%q: text ok=%v parser ok=%v", sqlText, textOK, ok)
		}
		if keys[0] != textKey {
			t.Errorf("%q: parser key %q, text key %q", sqlText, keys[0], textKey)
		}
	}
}
