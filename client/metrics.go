package client

import "ifdb/internal/obs"

// Router metrics, registered at init so every series is present (at
// zero) from the first scrape of a process embedding the Router.
var (
	mShardRouted = obs.NewCounterVec("ifdb_router_shard_routed_total",
		"Statements the sharded Router sent to each shard.", "shard")
	mFanoutWidth = obs.NewSizeHistogram("ifdb_router_fanout_width",
		"Shards touched per fan-out read.")
	mStaleMapRefusals = obs.NewCounter("ifdb_router_stale_map_refusals_total",
		"Statements a server refused for carrying an outdated shard-map version.")
	mRouterRetries = obs.NewCounter("ifdb_router_retries_total",
		"Routing retries: failover chases, stale-pool redials, and stale-map re-routes.")
	mShardErrors = obs.NewCounter("ifdb_router_shard_errors_total",
		"Per-node errors observed during Router probes and shard fan-out.")
)
