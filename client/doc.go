// Package client is the network client library for IFDB — the analog
// of the paper's modified libpq (§7.2), grown cluster-aware.
//
// Two entry points:
//
//   - Conn is one connection to one server. It keeps the process
//     label and acting principal client-side and transmits changes
//     lazily, coalesced with the next statement, exactly as the
//     paper's protocol does — which is also what makes AutoReconnect
//     sound: the client owns the authoritative label state, so a
//     fresh server session is brought back to it with one sync.
//   - Router is a concurrency-safe pool over per-node Conns for
//     replicated and sharded clusters: writes go to the primary (per
//     shard, when a shard map is in play), reads load-balance across
//     replicas, promotions are followed automatically, and
//     read-your-writes is preserved through commit-LSN tokens.
//
// Both speak API v2 (see ARCHITECTURE.md § Client API v2): Prepare
// pins a statement's parsed AST server-side and executions ship only
// a handle and parameters; Query/QueryContext stream results in
// chunks through the Rows iterator (a Router fan-out read merges
// per-shard streams lazily); ExecContext/QueryContext propagate
// context deadlines and cancellation as an out-of-band wire CANCEL
// that aborts the statement — and its transaction — server-side. A
// Router-prepared statement's shard-key derivation is computed once
// at prepare time by the SQL parser and applied to each execution's
// parameters. The classic text Exec is a shim over the same frames.
// For stdlib integration, the ifdb/driver package wraps all of this
// as a database/sql driver.
//
// Invariants worth knowing before building on this package:
//
//   - Read-your-writes tokens are (epoch, LSN) pairs from the last
//     acknowledged write; a replica read carries the LSN and waits
//     until the replica has applied it. LSN spaces are only
//     comparable within one epoch chain, so after a failover the
//     token is not applied until a new-epoch write re-bases it — and
//     in a sharded cluster each shard keeps its own token, because
//     each shard is its own epoch chain.
//   - Failover retries are at-least-once: a connection break between
//     a commit and its Result re-executes the statement. Route
//     non-idempotent writes through idempotent SQL where double-apply
//     matters.
//   - Sharded statements are version-fenced: the Router stamps each
//     statement with its shard-map version, and a server holding a
//     newer map refuses it with the new map attached, which the
//     Router adopts and re-routes — stale routing fails closed, never
//     silently writes to the wrong shard.
//
// See ARCHITECTURE.md § Failover & epochs (tokens, promotion
// following) and § Sharding (the shard map, routing and fan-out
// rules).
package client
