// Package client is the network client library for IFDB — the analog
// of the paper's modified libpq (§7.2), grown cluster-aware.
//
// Two entry points:
//
//   - Conn is one connection to one server. It keeps the process
//     label and acting principal client-side and transmits changes
//     lazily, coalesced with the next statement, exactly as the
//     paper's protocol does — which is also what makes AutoReconnect
//     sound: the client owns the authoritative label state, so a
//     fresh server session is brought back to it with one sync.
//   - Router is a concurrency-safe pool over per-node Conns for
//     replicated and sharded clusters: writes go to the primary (per
//     shard, when a shard map is in play), reads load-balance across
//     replicas, promotions are followed automatically, and
//     read-your-writes is preserved through commit-LSN tokens.
//
// Invariants worth knowing before building on this package:
//
//   - Read-your-writes tokens are (epoch, LSN) pairs from the last
//     acknowledged write; a replica read carries the LSN and waits
//     until the replica has applied it. LSN spaces are only
//     comparable within one epoch chain, so after a failover the
//     token is not applied until a new-epoch write re-bases it — and
//     in a sharded cluster each shard keeps its own token, because
//     each shard is its own epoch chain.
//   - Failover retries are at-least-once: a connection break between
//     a commit and its Result re-executes the statement. Route
//     non-idempotent writes through idempotent SQL where double-apply
//     matters.
//   - Sharded statements are version-fenced: the Router stamps each
//     statement with its shard-map version, and a server holding a
//     newer map refuses it with the new map attached, which the
//     Router adopts and re-routes — stale routing fails closed, never
//     silently writes to the wrong shard.
//
// See ARCHITECTURE.md § Failover & epochs (tokens, promotion
// following) and § Sharding (the shard map, routing and fan-out
// rules).
package client
