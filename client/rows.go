// Streaming results: the client half of the chunked ROWS frames of
// API v2. A Rows is an iterator over a statement's result set that
// holds at most one wire chunk in memory, so a large read no longer
// materializes client-side. See doc.go for the package overview.

package client

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ifdb/internal/types"
	"ifdb/internal/wire"
)

// Rows iterates a streaming result: call Next until it returns false,
// then check Err; Close releases the statement's connection (and must
// be called — an unclosed Rows pins its connection). Row and RowLabel
// are valid until the next call to Next. Implemented by Conn streams
// and by the Router's lazy fan-out merge.
type Rows interface {
	// Columns returns the result's column names.
	Columns() []string
	// Next advances to the next row, fetching the next wire chunk as
	// needed. It returns false at the end of the set or on error.
	Next() bool
	// Row returns the current row's values.
	Row() []Value
	// RowLabel returns the current row's IFC label (nil when IFC is
	// off).
	RowLabel() Label
	// Scan copies the current row into dest pointers (see ScanValue
	// for conversions).
	Scan(dest ...any) error
	// Err returns the error that ended iteration, if any.
	Err() error
	// Close drains and releases the stream. Safe to call more than
	// once; returns Err.
	Close() error
}

// connRows is one statement's stream on one connection.
type connRows struct {
	c     *Conn
	cols  []string
	chunk *wire.RowsChunk
	i     int // index of the current row within chunk

	// ctx is the statement's context. A stream that dies while ctx is
	// already over reports an error wrapping ctx's — the caller asked
	// for cancellation and should be able to match context.Canceled,
	// whether the server answered with its cancel error or the grace
	// period severed the socket first.
	ctx context.Context

	recvDone bool // the Done chunk has been received
	closed   bool
	err      error // terminal error (server or transport)

	// Trailer, valid once recvDone:
	affected   int64
	epoch, lsn uint64

	// onClose, when set, is called exactly once when the stream
	// finishes (Close or terminal error): the Router uses it to check
	// the connection back into its pool — or close it — based on err.
	onClose func(err error)
	// stopWatch stops the context watcher tied to this stream.
	stopWatch func()
}

// Columns returns the column names.
func (r *connRows) Columns() []string { return r.cols }

// Next advances to the next row.
func (r *connRows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	r.i++
	for r.chunk == nil || r.i >= len(r.chunk.Rows) {
		if r.recvDone {
			r.release()
			return false
		}
		if !r.fetch() {
			return false
		}
		r.i = 0
	}
	return true
}

// fetch reads the next ROWS frame into r.chunk. Returns false on a
// terminal condition (error; the Done frame with no rows also yields
// false via the caller's loop).
func (r *connRows) fetch() bool {
	typ, payload, err := wire.ReadFrame(r.c.r)
	if err != nil {
		r.transportFail(err)
		return false
	}
	if typ != wire.MsgRows {
		r.transportFail(fmt.Errorf("client: unexpected frame %c in result stream", typ))
		return false
	}
	ch, err := wire.DecodeRowsChunk(payload)
	if err != nil {
		r.transportFail(err)
		return false
	}
	r.chunk = ch
	if ch.First && r.cols == nil {
		r.cols = ch.Cols
	}
	if ch.Done {
		r.recvDone = true
		// Adopt the server's post-statement labels (the statement may
		// have contaminated or declassified the process) and mark the
		// lazy label sync clean.
		r.c.dirty = false
		r.c.plabel = ch.Label
		r.c.pilabel = ch.ILabel
		r.affected = ch.Affected
		r.epoch, r.lsn = ch.Epoch, ch.LSN
		r.c.stream = nil
		if ch.Err != "" {
			r.err = ctxErrOr(r.ctx, &serverError{msg: ch.Err, shardMap: ch.ShardMap})
			r.release()
			return false
		}
	}
	return true
}

// transportFail records a connection-level failure: the stream is
// dead and so is the connection (frames may be left half-read).
func (r *connRows) transportFail(err error) {
	r.err = ctxErrOr(r.ctx, err)
	r.c.broken = true
	r.c.stream = nil
	r.release()
}

// release runs the end-of-stream hooks once.
func (r *connRows) release() {
	if r.closed {
		return
	}
	r.closed = true
	if r.stopWatch != nil {
		r.stopWatch()
	}
	if r.onClose != nil {
		r.onClose(r.err)
	}
}

// Row returns the current row.
func (r *connRows) Row() []Value {
	if r.chunk == nil || r.i < 0 || r.i >= len(r.chunk.Rows) {
		return nil
	}
	return r.chunk.Rows[r.i]
}

// RowLabel returns the current row's label (nil when IFC is off).
func (r *connRows) RowLabel() Label {
	if r.chunk == nil || r.chunk.RowLabels == nil || r.i < 0 || r.i >= len(r.chunk.RowLabels) {
		return nil
	}
	return r.chunk.RowLabels[r.i]
}

// Scan copies the current row into dest pointers.
func (r *connRows) Scan(dest ...any) error { return scanRow(r.Row(), dest) }

// Err returns the error that ended iteration, if any.
func (r *connRows) Err() error { return r.err }

// Close drains the stream (the server has already sent it; skipping
// the tail would desynchronize the connection) and releases it.
func (r *connRows) Close() error {
	for !r.closed && !r.recvDone {
		if !r.fetch() {
			break
		}
	}
	r.release()
	return r.err
}

// drain consumes the whole stream into a buffered Result — the v1
// shim. The trailer's commit token rides along.
func (r *connRows) drain() (*Result, error) {
	res := &Result{Cols: r.cols}
	for r.Next() {
		res.Rows = append(res.Rows, r.Row())
		if rl := r.RowLabel(); rl != nil || r.chunk.RowLabels != nil {
			res.RowLabels = append(res.RowLabels, rl)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	res.Cols = r.cols // the first chunk may arrive only during Next
	res.Affected = r.affected
	res.Epoch, res.LSN = r.epoch, r.lsn
	return res, nil
}

// scanRow copies row values into dest pointers.
func scanRow(row []Value, dest []any) error {
	if row == nil {
		return errors.New("client: Scan called without a current row")
	}
	if len(dest) != len(row) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		if err := ScanValue(row[i], d); err != nil {
			return fmt.Errorf("client: column %d: %w", i, err)
		}
	}
	return nil
}

// ScanValue converts one SQL value into a Go destination pointer:
// *int64, *int, *float64, *string, *bool, *time.Time, *[]byte, *Value,
// or *any. NULL scans as the destination's zero value (use *Value or
// *any to distinguish).
func ScanValue(v Value, dest any) error {
	switch d := dest.(type) {
	case *Value:
		*d = v
		return nil
	case *any:
		*d = valueToAny(v)
		return nil
	}
	if v.IsNull() {
		switch d := dest.(type) {
		case *int64:
			*d = 0
		case *int:
			*d = 0
		case *float64:
			*d = 0
		case *string:
			*d = ""
		case *bool:
			*d = false
		case *time.Time:
			*d = time.Time{}
		case *[]byte:
			*d = nil
		default:
			return fmt.Errorf("unsupported Scan destination %T", dest)
		}
		return nil
	}
	switch d := dest.(type) {
	case *int64:
		if v.Kind() != types.KindInt {
			return fmt.Errorf("cannot scan %s into *int64", v.Kind())
		}
		*d = v.Int()
	case *int:
		if v.Kind() != types.KindInt {
			return fmt.Errorf("cannot scan %s into *int", v.Kind())
		}
		*d = int(v.Int())
	case *float64:
		switch v.Kind() {
		case types.KindFloat, types.KindInt:
			*d = v.Float()
		default:
			return fmt.Errorf("cannot scan %s into *float64", v.Kind())
		}
	case *string:
		*d = v.String()
	case *bool:
		if v.Kind() != types.KindBool {
			return fmt.Errorf("cannot scan %s into *bool", v.Kind())
		}
		*d = v.Bool()
	case *time.Time:
		if v.Kind() != types.KindTime {
			return fmt.Errorf("cannot scan %s into *time.Time", v.Kind())
		}
		*d = v.Time()
	case *[]byte:
		*d = []byte(v.String())
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

// valueToAny renders a value as its natural Go type.
func valueToAny(v Value) any {
	switch v.Kind() {
	case types.KindNull:
		return nil
	case types.KindInt:
		return v.Int()
	case types.KindFloat:
		return v.Float()
	case types.KindText:
		return v.Text()
	case types.KindBool:
		return v.Bool()
	case types.KindTime:
		return v.Time()
	default:
		return v.String()
	}
}
