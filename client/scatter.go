// Scatter-gather distributed reads: the client half of the distplan
// subsystem (internal/distplan). A keyless read over a sharded
// cluster is split at the shard boundary into a per-shard fragment —
// scan, pushed predicates, projection, and *partial* aggregation —
// and a gateway merge over the fragments' streams: k-way ordered
// merge, SUM-of-COUNTs / AVG recomposition, re-applied HAVING, top-K
// LIMIT. Statements the gateway cannot finalize exactly (declassify,
// engine-resident functions, subqueries, joins, views) are never
// split; they fall back to the bounded-concurrency union of the
// per-shard streams, which replaced the old one-shard-at-a-time
// drain.
//
// Every shard stream opens through readShardedStream, so the split
// path keeps the Router's whole read discipline: pooled connections,
// per-shard read-your-writes waits, and the mid-merge stale-map
// adopt-and-retry. Closing the merged stream cancels the fan-out
// context, which crosses the wire as CANCEL to every shard stream
// still open.

package client

import (
	"context"
	"fmt"
	"sync"

	"ifdb/internal/distplan"
	"ifdb/internal/sql"
	"ifdb/internal/types"
)

// splitKey keys the split cache: the statement text plus the pushdown
// toggle (two Routers over the same cluster may disagree on it).
type splitKey struct {
	text      string
	noPartial bool
}

type splitEntry struct {
	sp *distplan.Spec // nil = analyzed and not splittable
}

// splitCache memoizes distplan.Split by statement text, negative
// results included. Bounded like planCache: past the cap an arbitrary
// entry is evicted (re-splitting is a parse + render).
var (
	splitMu    sync.Mutex
	splitCache = make(map[splitKey]*splitEntry)
)

const splitCacheCap = 512

func splitFor(text string, noPartial bool) *distplan.Spec {
	k := splitKey{text: text, noPartial: noPartial}
	splitMu.Lock()
	if e, ok := splitCache[k]; ok {
		splitMu.Unlock()
		return e.sp
	}
	splitMu.Unlock()
	sp := distplan.Split(text, distplan.Options{NoPartial: noPartial})
	splitMu.Lock()
	if len(splitCache) >= splitCacheCap {
		for kk := range splitCache {
			delete(splitCache, kk)
			break
		}
	}
	splitCache[k] = &splitEntry{sp: sp}
	splitMu.Unlock()
	return sp
}

// splitSpec returns the scatter decomposition of a keyless sharded
// read, or nil for the union fallback. Beyond distplan's own refusals
// the Router only splits scans of base tables in the shard map's key
// table: a view is not in it, so view-backed reads — in particular
// declassifying views, whose label stripping must not be re-derived
// by gateway arithmetic — always take the unsplit fan-out.
func (r *Router) splitSpec(text string, m *ShardMap) *distplan.Spec {
	sp := splitFor(text, r.cfg.DisableAggPushdown)
	if sp == nil || m == nil || m.KeyColumn(sp.Table) == "" {
		return nil
	}
	return sp
}

// streamRows adapts a distplan stream to the client Rows interface.
type streamRows struct{ st distplan.Stream }

func (s *streamRows) Columns() []string      { return s.st.Columns() }
func (s *streamRows) Next() bool             { return s.st.Next() }
func (s *streamRows) Row() []Value           { return s.st.Row() }
func (s *streamRows) RowLabel() Label        { return s.st.RowLabel() }
func (s *streamRows) Scan(dest ...any) error { return scanRow(s.st.Row(), dest) }
func (s *streamRows) Err() error             { return s.st.Err() }

func (s *streamRows) Close() error {
	s.st.Close()
	return s.st.Err()
}

// scatterConfig wires a gateway merge (or union) to the cluster. Each
// shard's fragment stream opens through readShardedStream under a
// fan-out context; the merge's close cancels it, propagating CANCEL
// to every shard stream still open.
func (r *Router) scatterConfig(ctx context.Context, frag routedStmt, m *ShardMap, params []Value) distplan.Config {
	gctx, cancel := context.WithCancel(ctx)
	return distplan.Config{
		Open: func(shard int) (distplan.Stream, error) {
			rows, err := r.readShardedStream(gctx, frag, func(mm *ShardMap) (uint32, bool) {
				return uint32(shard), shard < len(mm.Shards)
			}, params)
			if err != nil {
				return nil, err
			}
			return rows, nil
		},
		Shards: len(m.Shards),
		Window: r.cfg.MaxFanout,
		Params: params,
		Wrap: func(shard int, err error) error {
			mShardErrors.Inc()
			return fmt.Errorf("client: fan-out read on shard %d: %w", shard, err)
		},
		OnClose: cancel,
	}
}

// scatterRows serves a keyless sharded streaming read. Split
// statements run their fragment on every shard and merge through the
// distplan gateway; everything else concatenates the per-shard
// streams in shard order with the same bounded in-flight window.
func (r *Router) scatterRows(ctx context.Context, rs routedStmt, params []Value) (Rows, error) {
	m := r.shardMap()
	mFanoutWidth.Observe(int64(len(m.Shards)))
	if rows, done, err := r.scatterExplain(ctx, rs, m, params); done {
		return rows, err
	}
	if sp := r.splitSpec(rs.sqlText, m); sp != nil {
		frag := routedStmt{sqlText: sp.Fragment, plan: planFor(sp.Fragment), prepared: rs.prepared, toks: rs.toks}
		st, err := sp.Gateway(r.scatterConfig(ctx, frag, m, params))
		if err != nil {
			return nil, err
		}
		if e := st.Err(); e != nil {
			st.Close()
			return nil, e
		}
		return &streamRows{st: st}, nil
	}
	st := distplan.Union(r.scatterConfig(ctx, rs, m, params))
	if err := st.Err(); err != nil {
		st.Close()
		return nil, err
	}
	return &streamRows{st: st}, nil
}

// scatterResult drains a scatter read for Exec-style callers.
// Affected stays 0, matching the engine's buffered SELECT results.
// RowLabels are attached when any merged row carried a label.
func drainRows(rows Rows) (*Result, error) {
	defer rows.Close()
	res := &Result{}
	var labels []Label
	saw := false
	for rows.Next() {
		res.Rows = append(res.Rows, append([]Value(nil), rows.Row()...))
		lbl := rows.RowLabel()
		labels = append(labels, lbl)
		if lbl != nil {
			saw = true
		}
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	res.Cols = rows.Columns()
	if saw {
		res.RowLabels = labels
	}
	return res, nil
}

// scatterExplain synthesizes the distributed plan for a keyless
// EXPLAIN over a splittable SELECT: the gateway merge recipe, then
// shard 0's plan for the fragment indented beneath it. done=false
// means the statement is not such an EXPLAIN and the caller falls
// through to the ordinary fan-out (per-shard plans concatenated).
func (r *Router) scatterExplain(ctx context.Context, rs routedStmt, m *ShardMap, params []Value) (Rows, bool, error) {
	if !rs.plan.explain {
		return nil, false, nil
	}
	stmts, err := sql.ParseAll(rs.sqlText)
	if err != nil || len(stmts) != 1 {
		return nil, false, nil
	}
	ex, ok := stmts[0].(*sql.ExplainStmt)
	if !ok {
		return nil, false, nil
	}
	sel, ok := ex.Stmt.(*sql.SelectStmt)
	if !ok {
		return nil, false, nil
	}
	text, err := sql.FormatSelect(sel)
	if err != nil {
		return nil, false, nil
	}
	sp := r.splitSpec(text, m)
	if sp == nil {
		return nil, false, nil
	}
	lines := sp.Describe(len(m.Shards), r.cfg.MaxFanout)
	fragText := "EXPLAIN " + sp.Fragment
	frag := routedStmt{sqlText: fragText, plan: planFor(fragText), toks: rs.toks}
	rows, err := r.readShardedStream(ctx, frag, func(mm *ShardMap) (uint32, bool) {
		return 0, len(mm.Shards) > 0
	}, params)
	if err != nil {
		return nil, true, fmt.Errorf("client: fan-out read on shard 0: %w", err)
	}
	for rows.Next() {
		lines = append(lines, "     "+rows.Row()[0].String())
	}
	if cerr := rows.Close(); cerr != nil {
		return nil, true, fmt.Errorf("client: fan-out read on shard 0: %w", cerr)
	}
	res := &Result{Cols: []string{"plan"}}
	for _, ln := range lines {
		res.Rows = append(res.Rows, []Value{types.NewText(ln)})
	}
	return &bufferedRows{res: res, i: -1}, true, nil
}
