// Shard routing: the client half of horizontal sharding (see
// ARCHITECTURE.md § Sharding).
//
// A shard map — fetched from any node's SHARDMAP frame, or supplied
// in RouterConfig — assigns the keyspace to shards, each an ordinary
// epoch-fenced replication group. The Router extracts the shard key
// from single-table statements (this file), hashes it, and routes the
// statement to the owning shard's primary (writes) or replicas
// (reads, with that shard's read-your-writes token). Reads whose key
// cannot be derived fan out to every shard and merge; writes without
// a derivable key are refused — the Router will not guess where a
// write belongs.
//
// Key extraction here is the conservative, text-level scan — since
// API v2 it is only the FALLBACK for statements the client-side SQL
// parser cannot handle; the primary path derives keys from the AST
// (shardkey.go), which additionally understands IN (...) lists,
// quoted identifiers, and key equalities alongside OR-bearing sibling
// conjuncts. When in doubt either path reports "not derivable" and
// the safe route (fan-out read, refused write) is taken. The server's
// shard-ownership guard backstops any residual misrouting.

package client

import (
	"strconv"
	"strings"

	"ifdb/internal/wire"
)

// ShardMap re-exports the wire-level shard map (see wire.ShardMap for
// the invariants: version-stamped, shard ids 0..n-1, keys hash by
// their canonical string form).
type ShardMap = wire.ShardMap

// Shard re-exports one shard: an epoch-fenced replication group
// owning a slice of the keyspace.
type Shard = wire.Shard

// ParseShardMap reads the operator-facing shard map text format (the
// -shard-map file of ifdb-server).
var ParseShardMap = wire.ParseShardMap

// shardTarget extracts the table a single-table statement addresses
// and the canonical shard-key string confining it, when derivable:
//
//   - INSERT INTO t (cols) VALUES (...): the value at the shard-key
//     column; with no column list, the shard key is assumed to be the
//     FIRST column (sharded tables should lead with their key, or
//     inserts should name columns). Multi-row and INSERT..SELECT are
//     not derivable.
//   - UPDATE t / DELETE FROM t / SELECT .. FROM t with a WHERE clause
//     containing `key = <literal|$n>` and no OR (an OR could reach
//     rows beyond that key's shard).
//
// ok=false means the statement is not confined to one shard: reads
// fan out, writes are refused.
func shardTarget(m *ShardMap, sqlText string, params []Value) (table, key string, ok bool) {
	s := strings.TrimSpace(sqlText)
	up := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(up, "INSERT"):
		return insertTarget(m, s, up, params)
	case strings.HasPrefix(up, "UPDATE"):
		table = firstWord(s[len("UPDATE"):])
	case strings.HasPrefix(up, "DELETE"):
		rest := strings.TrimSpace(s[len("DELETE"):])
		if !strings.HasPrefix(strings.ToUpper(rest), "FROM") {
			return "", "", false
		}
		table = firstWord(rest[len("FROM"):])
	case strings.HasPrefix(up, "SELECT"):
		i := strings.Index(up, " FROM ")
		if i < 0 {
			return "", "", false
		}
		table = firstWord(s[i+len(" FROM "):])
	default:
		return "", "", false
	}
	if table == "" || !singleTable(up, table) {
		return table, "", false
	}
	keyCol := m.KeyColumn(table)
	if keyCol == "" {
		return table, "", false
	}
	key, ok = whereKey(s, up, keyCol, params)
	return table, key, ok
}

// insertTarget handles the INSERT shapes.
func insertTarget(m *ShardMap, s, up string, params []Value) (table, key string, ok bool) {
	rest := strings.TrimSpace(s[len("INSERT"):])
	if !strings.HasPrefix(strings.ToUpper(rest), "INTO") {
		return "", "", false
	}
	rest = strings.TrimSpace(rest[len("INTO"):])
	table = firstWord(rest)
	if table == "" {
		return "", "", false
	}
	keyCol := m.KeyColumn(table)
	if keyCol == "" {
		return table, "", false
	}
	rest = strings.TrimSpace(rest[len(table):])

	// Optional explicit column list fixes the key position; otherwise
	// the shard key is assumed first.
	keyPos := 0
	if strings.HasPrefix(rest, "(") {
		cols, after, cok := parenList(rest)
		if !cok {
			return table, "", false
		}
		keyPos = -1
		for i, c := range cols {
			if strings.EqualFold(strings.TrimSpace(c), keyCol) {
				keyPos = i
				break
			}
		}
		if keyPos < 0 {
			return table, "", false // key column not inserted: not routable
		}
		rest = strings.TrimSpace(after)
	}
	upRest := strings.ToUpper(rest)
	if !strings.HasPrefix(upRest, "VALUES") {
		return table, "", false // INSERT ... SELECT and friends
	}
	rest = strings.TrimSpace(rest[len("VALUES"):])
	vals, after, vok := parenList(rest)
	if !vok || keyPos >= len(vals) {
		return table, "", false
	}
	if strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(after), ";")) != "" {
		return table, "", false // multi-row VALUES (...),(...) or trailing clauses
	}
	key, ok = canonicalValue(strings.TrimSpace(vals[keyPos]), params)
	return table, key, ok
}

// singleTable reports whether the statement plausibly addresses only
// the named table: no JOIN and no comma-separated FROM list right
// after it.
func singleTable(up, table string) bool {
	if strings.Contains(up, " JOIN ") {
		return false
	}
	i := strings.Index(up, strings.ToUpper(table))
	if i < 0 {
		return false
	}
	after := strings.TrimSpace(up[i+len(table):])
	return !strings.HasPrefix(after, ",")
}

// whereKey scans the WHERE clause for `keyCol = <value>` under a
// conjunction-only clause. The scan runs over a copy with string
// literals blanked out (length-preserving), so neither the key column
// nor an OR hiding inside a quoted value can fool it; the value
// itself is read from the original clause at the matched offset.
func whereKey(s, up, keyCol string, params []Value) (string, bool) {
	wi := strings.Index(up, " WHERE ")
	if wi < 0 {
		return "", false
	}
	clause := s[wi+len(" WHERE "):]
	upBlank := strings.ToUpper(blankQuotes(clause))
	if hasWord(upBlank, "OR") || hasWord(upBlank, "NOT") {
		// A disjunct can reach other shards, and a negation turns a
		// key equality into its complement — either way `key = v` no
		// longer confines the statement.
		return "", false
	}
	upKey := strings.ToUpper(keyCol)
	for from := 0; ; {
		i := strings.Index(upBlank[from:], upKey)
		if i < 0 {
			return "", false
		}
		i += from
		from = i + len(upKey)
		// Word boundaries: `k` must not match inside `pk` or `key2`.
		if i > 0 && isIdentChar(upBlank[i-1]) {
			continue
		}
		rest := strings.TrimSpace(clause[i+len(keyCol):])
		if len(rest) > 0 && isIdentChar(rest[0]) {
			continue
		}
		if !strings.HasPrefix(rest, "=") {
			continue
		}
		return canonicalValue(strings.TrimSpace(rest[1:]), params)
	}
}

// blankQuotes replaces every character inside '...' string literals
// (including the quotes) with spaces, preserving length so offsets in
// the result index into the original.
func blankQuotes(s string) string {
	b := []byte(s)
	in := false
	for i := 0; i < len(b); i++ {
		if b[i] == '\'' {
			in = !in
			b[i] = ' '
			continue
		}
		if in {
			b[i] = ' '
		}
	}
	return string(b)
}

// hasWord reports a standalone occurrence of word (any whitespace or
// punctuation boundary — " OR ", "\nOR(", ...) in an upper-cased,
// quote-blanked clause. Substrings inside identifiers (ORDER, KNOT)
// do not match.
func hasWord(upBlank, word string) bool {
	for from := 0; ; {
		i := strings.Index(upBlank[from:], word)
		if i < 0 {
			return false
		}
		i += from
		from = i + len(word)
		if i > 0 && isIdentChar(upBlank[i-1]) {
			continue
		}
		if i+len(word) < len(upBlank) && isIdentChar(upBlank[i+len(word)]) {
			continue
		}
		return true
	}
}

// parenList parses a leading parenthesized list, splitting top-level
// commas (quotes respected), returning the items and the remainder
// after the closing parenthesis.
func parenList(s string) (items []string, after string, ok bool) {
	if !strings.HasPrefix(s, "(") {
		return nil, "", false
	}
	depth, start, inQuote := 0, 1, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote {
			if c == '\'' {
				inQuote = false
			}
			continue
		}
		switch c {
		case '\'':
			inQuote = true
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				items = append(items, s[start:i])
				return items, s[i+1:], true
			}
		case ',':
			if depth == 1 {
				items = append(items, s[start:i])
				start = i + 1
			}
		}
	}
	return nil, "", false
}

// canonicalValue renders one SQL value token — a $n parameter, a
// numeric literal, or a 'string' literal — in the canonical form the
// server hashes (types.Value.String()).
func canonicalValue(tok string, params []Value) (string, bool) {
	if tok == "" {
		return "", false
	}
	switch {
	case tok[0] == '$':
		end := 1
		for end < len(tok) && tok[end] >= '0' && tok[end] <= '9' {
			end++
		}
		n, err := strconv.Atoi(tok[1:end])
		if err != nil || n < 1 || n > len(params) || trailingJunk(tok[end:]) {
			return "", false
		}
		return params[n-1].String(), true
	case tok[0] == '\'':
		var b strings.Builder
		i := 1
		for i < len(tok) {
			if tok[i] == '\'' {
				if i+1 < len(tok) && tok[i+1] == '\'' {
					b.WriteByte('\'')
					i += 2
					continue
				}
				if trailingJunk(tok[i+1:]) {
					return "", false
				}
				return b.String(), true
			}
			b.WriteByte(tok[i])
			i++
		}
		return "", false // unterminated
	case tok[0] == '-' || (tok[0] >= '0' && tok[0] <= '9'):
		end := 1
		for end < len(tok) && strings.ContainsRune("0123456789.eE+-", rune(tok[end])) {
			end++
		}
		lit := tok[:end]
		if trailingJunk(tok[end:]) {
			return "", false
		}
		if i, err := strconv.ParseInt(lit, 10, 64); err == nil {
			return strconv.FormatInt(i, 10), true
		}
		if f, err := strconv.ParseFloat(lit, 64); err == nil {
			return strconv.FormatFloat(f, 'g', -1, 64), true
		}
		return "", false
	}
	return "", false
}

// trailingJunk reports whether anything but whitespace (or a closing
// semicolon) follows a value token — e.g. `k = 5 + 1` must not route
// by "5".
func trailingJunk(s string) bool {
	t := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), ";"))
	return t != "" && !strings.HasPrefix(strings.ToUpper(t), "AND ") && t != "AND"
}

func firstWord(s string) string {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return s[:i]
		}
	}
	return s
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
