// Parser-based shard-key derivation: given a statement's AST, decide
// which table it addresses and which key values confine it to one
// shard. Computed once per statement text (and pinned in prepared
// handles), then evaluated per execution against the parameters and
// the Router's current map.
//
// Compared with the text scan it replaces (shard.go, kept as the
// fallback for unparsable input), the parser path additionally
// derives:
//
//   - `key IN (a, b, c)` lists, routable when every member hashes to
//     the same shard under the current map;
//   - quoted identifiers ("k" = 5), which the text scan cannot match
//     against the map's column names safely;
//   - key equalities buried under other AND conjuncts that contain
//     ORs or NOTs of their own (`k = 5 AND (a OR b)`) — a top-level
//     conjunct `k = v` confines the statement no matter what its
//     siblings do;
//   - UPDATEs that reassign the shard-key column, which must NOT be
//     routed (the row would migrate shards): the parser path refuses
//     them, where the text scan could be fooled.
//
// When in doubt it still reports "not derivable" and the safe path
// (fan-out read, refused write) is taken; the server's shard-
// ownership guard backstops any residual misrouting.

package client

import (
	"strings"

	"ifdb/internal/sql"
)

// keyExpr extracts one shard-key value at execution time: either a
// literal rendered canonically at analysis time, or a positional
// parameter rendered from the execution's arguments.
type keyExpr struct {
	valid bool   // false: the expression was not a plain literal/param
	lit   string // canonical literal, when param == 0
	param int    // 1-based parameter index, when > 0
}

// eval renders the canonical key string the servers hash.
func (k keyExpr) eval(params []Value) (string, bool) {
	if !k.valid {
		return "", false
	}
	if k.param > 0 {
		if k.param > len(params) {
			return "", false
		}
		return params[k.param-1].String(), true
	}
	return k.lit, true
}

// eqPair is one top-level WHERE conjunct of the form `col = v` or
// `col IN (v1, ..., vn)`.
type eqPair struct {
	col  string
	vals []keyExpr
}

// keyExprOf converts a constant AST expression; ok=false for anything
// with evaluation semantics (arithmetic, functions, subqueries).
func keyExprOf(e sql.Expr) (keyExpr, bool) {
	switch x := e.(type) {
	case *sql.Literal:
		return keyExpr{valid: true, lit: x.Value.String()}, true
	case *sql.Param:
		return keyExpr{valid: true, param: x.Index}, true
	}
	return keyExpr{}, false
}

// deriveShardShape fills p's single-table routing shape from one
// parsed statement. derivable=false marks shapes that can never
// confine to one shard (joins, subqueries, multi-row inserts, ...).
func (p *stmtPlan) deriveShardShape(st sql.Statement) {
	switch x := st.(type) {
	case *sql.InsertStmt:
		p.table = strings.ToLower(x.Table)
		if x.Select != nil || len(x.Rows) != 1 {
			return // INSERT..SELECT / multi-row: not confined to one key
		}
		vals := make([]keyExpr, len(x.Rows[0]))
		for i, e := range x.Rows[0] {
			vals[i], _ = keyExprOf(e) // non-consts stay invalid; checked at eval
		}
		p.insertCols = x.Columns
		p.insertVals = vals
		p.derivable = true
	case *sql.UpdateStmt:
		p.table = strings.ToLower(x.Table)
		if hasSubquery(st) {
			return
		}
		// An UPDATE that reassigns the shard-key column would migrate
		// the row across shards; whether it does depends on the map at
		// execution time, so record the assigned columns and let
		// shardKeys refuse then.
		for _, sc := range x.Set {
			p.setCols = append(p.setCols, strings.ToLower(sc.Column))
		}
		p.eqPairs = conjunctPairs(x.Where)
		p.derivable = true
	case *sql.DeleteStmt:
		p.table = strings.ToLower(x.Table)
		if hasSubquery(st) {
			return
		}
		p.eqPairs = conjunctPairs(x.Where)
		p.derivable = true
	case *sql.SelectStmt:
		if x.From == nil || x.From.Sub != nil || len(x.Joins) != 0 {
			return // no table / subselect / join: fan out
		}
		p.table = strings.ToLower(x.From.Name)
		if hasSubquery(st) {
			return // a subquery evaluates against shard-local data
		}
		p.eqPairs = conjunctPairs(x.Where)
		p.derivable = true
	case *sql.ExplainStmt:
		// EXPLAIN routes like the statement it explains: a keyed inner
		// SELECT's plan comes from the owning shard.
		if sel, ok := x.Stmt.(*sql.SelectStmt); ok {
			p.deriveShardShape(sel)
		}
	}
}

// hasSubquery reports any subquery anywhere in the statement: its
// result depends on which shard evaluates it, so the statement is
// never treated as confined.
func hasSubquery(st sql.Statement) bool {
	found := false
	sql.WalkExprs(st, func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.InExpr:
			if x.Sub != nil {
				found = true
			}
		case *sql.ExistsExpr, *sql.SubqueryExpr:
			found = true
		}
	})
	return found
}

// conjunctPairs decomposes a WHERE clause's top-level AND chain into
// `col = const` and `col IN (consts)` pairs. Anything else — ORs,
// NOTs, ranges, function calls — is simply not a confining conjunct:
// it narrows the result further, so ignoring it is safe (the
// equality alone already pins the shard). A top-level OR yields no
// pairs at all, correctly marking the statement unconfined.
func conjunctPairs(where sql.Expr) []eqPair {
	var pairs []eqPair
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case *sql.BinaryExpr:
			switch x.Op {
			case "AND":
				walk(x.Left)
				walk(x.Right)
			case "=":
				col, val := x.Left, x.Right
				if _, isConst := keyExprOf(val); !isConst {
					col, val = x.Right, x.Left
				}
				cr, ok := col.(*sql.ColumnRef)
				if !ok {
					return
				}
				ke, ok := keyExprOf(val)
				if !ok {
					return
				}
				pairs = append(pairs, eqPair{col: strings.ToLower(cr.Column), vals: []keyExpr{ke}})
			}
		case *sql.InExpr:
			if x.Not || x.Sub != nil || len(x.List) == 0 {
				return
			}
			cr, ok := x.Expr.(*sql.ColumnRef)
			if !ok {
				return
			}
			vals := make([]keyExpr, 0, len(x.List))
			for _, le := range x.List {
				ke, ok := keyExprOf(le)
				if !ok {
					return // a non-const member: the list is not derivable
				}
				vals = append(vals, ke)
			}
			pairs = append(pairs, eqPair{col: strings.ToLower(cr.Column), vals: vals})
		}
	}
	if where != nil {
		walk(where)
	}
	return pairs
}

// shardKeys derives the canonical key strings confining the statement
// under map m with the given parameters. ok=false means the statement
// is not confined to one derivable key set: reads fan out, writes are
// refused. table is reported even when ok=false (it distinguishes
// "unroutable table statement" from "no table at all").
func (p *stmtPlan) shardKeys(m *ShardMap, params []Value) (table string, keys []string, ok bool) {
	if !p.parsed {
		// Text fallback: the conservative scan derives at most one key.
		t, key, tok := shardTarget(m, p.sqlText, params)
		if !tok {
			return t, nil, false
		}
		return t, []string{key}, true
	}
	if p.table == "" || !p.derivable {
		return p.table, nil, false
	}
	keyCol := m.KeyColumn(p.table)
	if keyCol == "" {
		return p.table, nil, false
	}
	// UPDATE reassigning the key column: the row would change shards.
	for _, c := range p.setCols {
		if strings.EqualFold(c, keyCol) {
			return p.table, nil, false
		}
	}
	if p.insertVals != nil {
		pos := 0
		if p.insertCols != nil {
			pos = -1
			for i, c := range p.insertCols {
				if strings.EqualFold(c, keyCol) {
					pos = i
					break
				}
			}
		}
		if pos < 0 || pos >= len(p.insertVals) {
			return p.table, nil, false
		}
		key, kok := p.insertVals[pos].eval(params)
		if !kok {
			return p.table, nil, false
		}
		return p.table, []string{key}, true
	}
	for _, pr := range p.eqPairs {
		if !strings.EqualFold(pr.col, keyCol) {
			continue
		}
		out := make([]string, 0, len(pr.vals))
		for _, ke := range pr.vals {
			key, kok := ke.eval(params)
			if !kok {
				return p.table, nil, false
			}
			out = append(out, key)
		}
		return p.table, out, true
	}
	return p.table, nil, false
}

// singleShardOf maps keys under m, reporting the owning shard when
// every key agrees — the rule that makes IN (...) lists routable.
func singleShardOf(m *ShardMap, keys []string) (uint32, bool) {
	if len(keys) == 0 {
		return 0, false
	}
	sid := m.ShardOf(keys[0])
	for _, k := range keys[1:] {
		if m.ShardOf(k) != sid {
			return 0, false
		}
	}
	return sid, true
}
