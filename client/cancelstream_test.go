package client_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ifdb"
	"ifdb/client"
)

// bigResultServer starts a server with a table whose full SELECT is
// far larger than the loopback socket buffers (rows × payload ≈ 16MB),
// so the server's chunked stream write-blocks mid-result and a cancel
// can land between chunks.
func bigResultServer(t *testing.T) (*ifdb.DB, string) {
	t.Helper()
	db, addr := startServer(t, "")
	sess := db.AdminSession()
	if _, err := sess.Exec(`CREATE TABLE big (k BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("x", 8<<10)
	for i := 0; i < 2000; i++ {
		if _, err := sess.Exec(`INSERT INTO big VALUES ($1, $2)`, ifdb.Int(int64(i)), ifdb.Text(payload)); err != nil {
			t.Fatal(err)
		}
	}
	return db, addr
}

// TestConnCancelMidStream: the satellite scenario — the statement
// executes successfully, rows are already streaming, THEN the context
// is canceled between chunks. The server must notice at its next
// chunk boundary, abort the open transaction, and terminate the
// stream with an error the client folds into a wrapped
// context.Canceled; the connection survives (the cancel rode the
// out-of-band path and the server answered in-stream).
func TestConnCancelMidStream(t *testing.T) {
	_, addr := bigResultServer(t)
	conn, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Open an explicit transaction with a visible effect, so the
	// mid-stream abort is observable: the marker row must die with it.
	if _, err := conn.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`INSERT INTO big VALUES (999999, 'marker')`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := conn.QueryContext(ctx, `SELECT k, v FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	// Surface a few rows to prove the stream was live before the
	// cancel, then cancel and give the out-of-band CANCEL time to land
	// while the server is write-blocked mid-stream.
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("stream died after %d rows: %v", i, rows.Err())
		}
	}
	cancel()
	time.Sleep(200 * time.Millisecond)

	n := 5
	for rows.Next() {
		n++
	}
	serr := rows.Err()
	if serr == nil {
		t.Fatalf("canceled stream delivered all %d rows without error", n)
	}
	if !errors.Is(serr, context.Canceled) {
		t.Fatalf("stream error does not wrap context.Canceled: %v", serr)
	}
	if client.IsTransportError(serr) {
		t.Fatalf("clean mid-stream cancel classified as transport error: %v", serr)
	}
	if n >= 2000 {
		t.Fatalf("server streamed the whole result despite the cancel")
	}
	if err := rows.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close error = %v", err)
	}

	// The server aborted the explicit transaction mid-stream: COMMIT
	// has nothing to commit...
	if _, err := conn.Exec(`COMMIT`); err == nil {
		t.Fatal("COMMIT succeeded after the server aborted the transaction")
	}
	// ...the marker row died with it...
	res, err := conn.Exec(`SELECT COUNT(*) FROM big WHERE k = 999999`)
	if err != nil {
		t.Fatalf("conn dead after mid-stream cancel: %v", err)
	}
	var cnt int64
	if err := client.ScanValue(res.Rows[0][0], &cnt); err != nil {
		t.Fatal(err)
	}
	if cnt != 0 {
		t.Fatalf("marker row survived the aborted transaction")
	}
	// ...and the connection itself keeps working (asserted by the two
	// statements above executing at all).
}

// TestRouterCancelMidStream: the same scenario through the Router,
// asserting the pool discipline — a canceled statement's connection is
// retired, not repooled, because the out-of-band CANCEL may land after
// the session moves on and would kill the next borrower's statement.
func TestRouterCancelMidStream(t *testing.T) {
	_, addr := bigResultServer(t)
	r, err := client.OpenRouter(client.RouterConfig{Addrs: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Warm the pool so the canceled statement borrows a pooled conn.
	if _, err := r.Exec(`SELECT COUNT(*) FROM big`); err != nil {
		t.Fatal(err)
	}
	if idle := r.IdleConns()[addr]; idle != 1 {
		t.Fatalf("warmup left %d idle conns, want 1", idle)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := r.QueryContext(ctx, `SELECT k, v FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("stream died after %d rows: %v", i, rows.Err())
		}
	}
	cancel()
	time.Sleep(200 * time.Millisecond)
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error does not wrap context.Canceled: %v", err)
	}
	rows.Close()

	// The canceled stream's connection must NOT be back in the pool.
	if idle := r.IdleConns()[addr]; idle != 0 {
		t.Fatalf("canceled statement's conn was repooled: %d idle", idle)
	}
	// The Router still works — the next statement dials fresh.
	if _, err := r.Exec(`SELECT COUNT(*) FROM big`); err != nil {
		t.Fatalf("router dead after cancel: %v", err)
	}
}
