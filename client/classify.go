// Statement analysis: the single classifier behind the Router's
// routing decisions and the v2 prepare path.
//
// Every statement the Router sees is analyzed exactly once (results
// are cached by text, like the engine's parse cache; prepared
// statements pin their plan in the handle): the real SQL parser
// produces a stmtPlan carrying the routing classification — read-only
// / transaction control / DDL / side effects — and the shard-key
// derivation (shardkey.go). Unparsable input falls back to the
// conservative text heuristics that predate the parser path
// (router.go's old prefix scans, shard.go's text extraction), so a
// statement the server's dialect knows but the client parser does not
// still routes safely.

package client

import (
	"strings"
	"sync"

	"ifdb/internal/sql"
)

// stmtPlan is one statement batch's analysis. Immutable once built;
// shared freely across goroutines and prepared handles.
type stmtPlan struct {
	parsed bool // AST analysis succeeded; false → text fallback

	txnControl bool // any BEGIN/COMMIT/ROLLBACK
	ddl        bool // any CREATE/DROP
	readOnly   bool // pure SELECT/EXPLAIN batch without side-effect functions
	sideEffect bool // label/sequence/procedure-style function calls
	explain    bool // a single EXPLAIN statement (distributed-plan path)

	// Shard-key derivation inputs (single-statement, single-table
	// plans only; see shardkey.go):
	table      string    // the one table addressed, "" when none/unknown
	insertCols []string  // INSERT column list (nil = positional)
	insertVals []keyExpr // INSERT single-row VALUES extractors
	eqPairs    []eqPair  // WHERE top-level conjunct equalities / IN lists
	setCols    []string  // UPDATE SET columns (key reassignment check)
	derivable  bool      // the shapes above may confine the statement

	sqlText string // original text (fallback paths re-scan it)
}

// sideEffectFuncs are the SELECT-invocable functions that mutate
// session or database state: statements calling them are never
// load-balanced to replicas and never routed by shard key. (Unknown
// function names are allowed through — a stored procedure that writes
// answers ErrReadOnlyReplica at runtime, which the routing layers
// already chase to the primary.)
var sideEffectFuncs = map[string]bool{
	"addsecrecy":      true,
	"declassify":      true,
	"endorse":         true,
	"dropintegrity":   true,
	"nextval":         true,
	"create_sequence": true,
	"call":            true,
}

// planCache memoizes analysis by statement text. Bounded: a client
// interpolating values into SQL (the naive pattern the prepared API
// exists to replace) generates unbounded distinct texts, and unlike
// the engine's parse cache this map lives in every client process —
// past the cap an arbitrary entry is evicted (re-analysis is cheap).
var (
	planMu    sync.Mutex
	planCache = make(map[string]*stmtPlan)
)

const planCacheCap = 1024

// planFor returns the (cached) analysis of sqlText.
func planFor(sqlText string) *stmtPlan {
	planMu.Lock()
	if p := planCache[sqlText]; p != nil {
		planMu.Unlock()
		return p
	}
	planMu.Unlock()
	p := analyzeStmt(sqlText) // parse outside the lock
	planMu.Lock()
	if len(planCache) >= planCacheCap {
		for k := range planCache {
			delete(planCache, k)
			break
		}
	}
	planCache[sqlText] = p
	planMu.Unlock()
	return p
}

// analyzeStmt builds a stmtPlan from the parsed AST, or a text-
// fallback plan when parsing fails.
func analyzeStmt(sqlText string) *stmtPlan {
	p := &stmtPlan{sqlText: sqlText}
	stmts, err := sql.ParseAll(sqlText)
	if err != nil || len(stmts) == 0 {
		// The server may understand a dialect the client parser does
		// not: classify by the conservative text scans instead.
		p.readOnly = isReadOnlyText(sqlText)
		p.txnControl = isTxnControlText(sqlText)
		p.ddl = isDDLText(sqlText)
		return p
	}
	p.parsed = true

	allSelect := true
	ddlCount := 0
	for _, st := range stmts {
		switch st.(type) {
		case *sql.BeginStmt, *sql.CommitStmt, *sql.RollbackStmt:
			p.txnControl = true
			allSelect = false
		case *sql.CreateTableStmt, *sql.DropTableStmt, *sql.CreateIndexStmt,
			*sql.CreateViewStmt, *sql.CreateTriggerStmt:
			ddlCount++
			allSelect = false
		case *sql.SelectStmt:
		case *sql.ExplainStmt:
			// EXPLAIN executes everywhere a SELECT does (replicas
			// included); a keyless sharded EXPLAIN of a splittable
			// SELECT renders the distributed plan client-side.
		default:
			allSelect = false
		}
		sql.WalkExprs(st, func(e sql.Expr) {
			if fc, ok := e.(*sql.FuncCall); ok && sideEffectFuncs[fc.Name] {
				p.sideEffect = true
			}
		})
	}
	// ddl means PURELY DDL: only such a batch may fan out to every
	// shard primary. A batch mixing DDL with DML must not — its DML
	// would execute on shards that don't own the rows (the ownership
	// guard would abort it half-applied) — so it falls through to the
	// write path, where key derivation refuses multi-statement input.
	p.ddl = ddlCount > 0 && ddlCount == len(stmts)
	p.readOnly = allSelect && !p.sideEffect

	if len(stmts) == 1 {
		if _, ok := stmts[0].(*sql.ExplainStmt); ok {
			p.explain = true
		}
		p.deriveShardShape(stmts[0])
	}
	return p
}

// --------------------------------------------------------------------------
// Text fallback classification (the pre-parser heuristics, kept for
// input the client-side parser cannot handle).

// isReadOnlyText is the conservative prefix/substring scan: plain
// SELECTs without side-effectful function names.
func isReadOnlyText(sqlText string) bool {
	s := strings.TrimSpace(sqlText)
	up := strings.ToUpper(s)
	if !strings.HasPrefix(up, "SELECT") {
		return false
	}
	for _, fn := range []string{
		"ADDSECRECY", "DECLASSIFY", "ENDORSE", "DROPINTEGRITY",
		"NEXTVAL", "CREATE_SEQUENCE", "CALL",
	} {
		if strings.Contains(up, fn) {
			return false
		}
	}
	return true
}

// isTxnControlText reports BEGIN/COMMIT/ROLLBACK by prefix.
func isTxnControlText(sqlText string) bool {
	up := strings.ToUpper(strings.TrimSpace(sqlText))
	return strings.HasPrefix(up, "BEGIN") || strings.HasPrefix(up, "COMMIT") || strings.HasPrefix(up, "ROLLBACK")
}

// isDDLText reports schema statements by prefix.
func isDDLText(sqlText string) bool {
	up := strings.ToUpper(strings.TrimSpace(sqlText))
	return strings.HasPrefix(up, "CREATE") || strings.HasPrefix(up, "DROP") || strings.HasPrefix(up, "ALTER")
}
