// The routing client: a concurrency-safe pool over per-node Conns
// that sends writes to the current primary, load-balances reads across
// replicas, follows promotions when the primary fails over, and
// preserves read-your-writes through commit-LSN tokens.
//
// The token flow is the part worth spelling out. Every primary write
// returns (epoch, LSN) — the primary's WAL position covering the
// write's commit. The Router keeps the freshest such pair; a read
// routed to a replica carries the LSN as Query.WaitLSN, so the replica
// delays the read until its applied position covers the client's last
// acknowledged write. LSN spaces are only comparable within one epoch
// chain, so after a failover (new epoch) the stale token is not applied
// to replicas: reads fall back to the primary until a write under the
// new epoch re-bases the token. With asynchronous replication a
// failover may lose the tail of acknowledged writes — the token makes
// reads monotone with respect to what *this* Router observed, it
// cannot resurrect commits the failover discarded.
//
// Label discipline: the Router multiplexes statements from many
// goroutines over pooled connections, so it only suits workloads whose
// process label stays empty (the common case for web-style read
// scale-out). A statement that contaminates its connection — e.g.
// SELECT addsecrecy(...) — poisons label state the next borrower must
// not inherit; such connections are closed instead of repooled, and
// label-changing statements are routed to the primary like writes
// (a *sharded* Router refuses them outright: there is no single
// primary to pin label state to). Workloads that manage labels
// should dial their own Conn.

package client

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// routedStmt is one statement as the routing paths see it: its text,
// its (cached) analysis, and whether to execute it through prepared
// handles — the Router prepares a statement at most once per pooled
// connection, so repeated executions ship only a handle and
// parameters.
type routedStmt struct {
	sqlText  string
	plan     *stmtPlan
	prepared bool
	// toks, when set, scopes read-your-writes to one RouterSession;
	// nil uses the Router's shared default scope.
	toks *sessTokens
}

// RouterConfig configures a Router.
type RouterConfig struct {
	// Addrs are the client addresses of every cluster node (primary
	// and replicas, in any order); Token and Principal as in Config.
	Addrs     []string
	Token     string
	Principal uint64

	// PoolSize caps idle pooled connections per node (default 4).
	PoolSize int

	// FailoverTimeout bounds how long a write waits for a new primary
	// to appear after the current one fails (default 10s).
	FailoverTimeout time.Duration

	// DialTimeout bounds each probe/pool connection attempt
	// (default 2s).
	DialTimeout time.Duration

	// AllowStaleReads drops the read-your-writes guarantee: reads
	// carry no commit-LSN token, so a replica answers immediately from
	// whatever it has applied — eventual consistency in exchange for
	// not paying replication lag on every read after a write. The
	// guarantee is per-Router either way; workloads that need both pick
	// per call by running two Routers over the same addresses.
	AllowStaleReads bool

	// ShardMap shards the Router explicitly (see shard.go and
	// ARCHITECTURE.md § Sharding). Nil asks every configured address
	// for its SHARDMAP at open and adopts the first answer; when no
	// node is sharded either, the Router runs in the classic
	// one-replication-group mode.
	ShardMap *ShardMap

	// MaxFanout bounds how many shard streams a fan-out read holds in
	// flight at once (default 8): the gateway merge consumes shards in
	// order while up to MaxFanout fragment streams fill their buffers
	// concurrently.
	MaxFanout int

	// DisableAggPushdown turns off partial-aggregate pushdown for
	// split fan-out reads: aggregate statements ship their matching
	// rows and aggregate entirely at the gateway. Exists as the
	// ship-all-rows baseline for the scatter-agg benchmark.
	DisableAggPushdown bool

	// Secrecy, when set, gives every pooled connection a static
	// process label made of these tags: dials adopt the tags before
	// first use, and the repool check expects exactly this label
	// instead of the empty one. That lets one Router serve a tenant
	// cohort that runs contaminated by construction (reads confined by
	// Query by Label, writes stamped with the cohort's tags) while
	// keeping the discipline that a statement which *changes* the label
	// retires its connection. The tag IDs must be valid on every node
	// the Router reaches — on a sharded Router that means creating
	// principals and tags in the same order on every shard.
	Secrecy []Tag
}

// Router routes statements across a replicated IFDB cluster. Safe for
// concurrent use by any number of goroutines.
type Router struct {
	cfg RouterConfig
	// baseLabel is the label every pooled connection is expected to
	// carry: cfg.Secrecy's tags, or empty.
	baseLabel Label

	mu      sync.Mutex
	nodes   map[string]*routerNode
	primary string // addr of the current primary ("" = unknown)
	epoch   uint64 // highest epoch observed across the cluster
	smap    *ShardMap
	closed  bool

	rr        atomic.Uint64 // read round-robin cursor
	lastProbe atomic.Int64  // unix nanos of the last Reprobe (rate limit)

	// toks is the default read-your-writes scope, shared by every
	// caller that doesn't carve out its own with Session().
	toks *sessTokens
}

// rwTok is the read-your-writes token: the primary WAL position of the
// Router's last acknowledged write, with the epoch that position lives
// in.
type rwTok struct {
	epoch uint64
	lsn   uint64
}

// sessTokens is one read-your-writes scope: the freshest acknowledged
// write position, global (unsharded mode) and per shard — each shard
// is its own replication group with its own epoch chain and LSN
// space, so one global token would be incomparable across shards.
// The Router's default scope is shared by every caller: any caller's
// write advances the token every other caller's reads wait on.
// Session() carves out private scopes so one session's writes don't
// make unrelated sessions pay its replication-lag wait.
type sessTokens struct {
	token atomic.Pointer[rwTok]
	mu    sync.Mutex
	stoks map[uint32]rwTok
}

func newSessTokens() *sessTokens {
	return &sessTokens{stoks: make(map[uint32]rwTok)}
}

func (t *sessTokens) global() *rwTok { return t.token.Load() }

func (t *sessTokens) shard(sid uint32) *rwTok {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tok, ok := t.stoks[sid]; ok {
		return &tok
	}
	return nil
}

// noteWrite advances the global token to the result of a primary
// write (forward within an epoch, re-based on the first write of a
// newer epoch).
func (t *sessTokens) noteWrite(res *Result) {
	if res.LSN == 0 {
		return // in-memory primary: no LSN space, nothing to wait on
	}
	for {
		cur := t.token.Load()
		if cur != nil && cur.epoch == res.Epoch && cur.lsn >= res.LSN {
			return
		}
		if cur != nil && cur.epoch > res.Epoch {
			return
		}
		if t.token.CompareAndSwap(cur, &rwTok{epoch: res.Epoch, lsn: res.LSN}) {
			return
		}
	}
}

// noteShardWrite advances shard sid's token under the same rules.
func (t *sessTokens) noteShardWrite(sid uint32, res *Result) {
	if res.LSN == 0 {
		return // in-memory shard: no LSN space, nothing to wait on
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.stoks[sid]
	if ok && (cur.epoch > res.Epoch || (cur.epoch == res.Epoch && cur.lsn >= res.LSN)) {
		return
	}
	t.stoks[sid] = rwTok{epoch: res.Epoch, lsn: res.LSN}
}

// toksFor resolves a statement's read-your-writes scope.
func (r *Router) toksFor(rs routedStmt) *sessTokens {
	if rs.toks != nil {
		return rs.toks
	}
	return r.toks
}

// RouterSession scopes read-your-writes to one logical caller. Its
// reads wait only for writes issued through the same session (or none
// yet), instead of the Router-wide freshest write; its writes advance
// only its own token. Sessions are cheap (a token scope, no
// connections — statements still route through the Router's shared
// pools) and safe for concurrent use.
type RouterSession struct {
	r    *Router
	toks *sessTokens
}

// Session returns a new private read-your-writes scope on the Router.
func (r *Router) Session() *RouterSession {
	return &RouterSession{r: r, toks: newSessTokens()}
}

// Exec routes one statement under the session's token scope.
func (s *RouterSession) Exec(sqlText string, params ...Value) (*Result, error) {
	return s.ExecContext(context.Background(), sqlText, params...)
}

// ExecContext is Exec with deadline/cancel propagation.
func (s *RouterSession) ExecContext(ctx context.Context, sqlText string, params ...Value) (*Result, error) {
	return s.r.exec(ctx, routedStmt{sqlText: sqlText, plan: planFor(sqlText), toks: s.toks}, params)
}

// Query routes one statement under the session's token scope and
// streams the result.
func (s *RouterSession) Query(sqlText string, params ...Value) (Rows, error) {
	return s.QueryContext(context.Background(), sqlText, params...)
}

// QueryContext is Query with deadline/cancel propagation.
func (s *RouterSession) QueryContext(ctx context.Context, sqlText string, params ...Value) (Rows, error) {
	return s.r.query(ctx, routedStmt{sqlText: sqlText, plan: planFor(sqlText), toks: s.toks}, params)
}

type routerNode struct {
	addr string

	mu      sync.Mutex
	free    []*Conn
	replica bool
	epoch   uint64
	down    bool
}

// OpenRouter probes every node, locates the primary, and returns a
// ready Router. It fails if no reachable node claims to be a primary.
func OpenRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("client: router needs at least one address")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.FailoverTimeout <= 0 {
		cfg.FailoverTimeout = 10 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.MaxFanout <= 0 {
		cfg.MaxFanout = 8
	}
	r := &Router{cfg: cfg, nodes: make(map[string]*routerNode), toks: newSessTokens()}
	for _, t := range cfg.Secrecy {
		r.baseLabel = r.baseLabel.Add(t)
	}
	for _, addr := range cfg.Addrs {
		r.nodes[addr] = &routerNode{addr: addr}
	}
	if cfg.ShardMap != nil {
		if err := cfg.ShardMap.Validate(); err != nil {
			return nil, err
		}
		r.adoptMap(cfg.ShardMap.Clone())
	} else {
		r.discoverShardMap()
	}
	if err := r.Reprobe(); err != nil {
		return nil, err
	}
	return r, nil
}

// discoverShardMap asks each configured address for its shard map and
// adopts the first answer (unsharded nodes answer "none").
func (r *Router) discoverShardMap() {
	for _, addr := range r.addrs() {
		conn, err := r.dial(addr)
		if err != nil {
			continue
		}
		m, err := conn.ShardMap()
		conn.Close()
		if err == nil && m != nil {
			r.adoptMap(m)
			return
		}
	}
}

// adoptMap installs a newer shard map (no-op when the Router already
// holds that version or newer) and registers any member addresses the
// node table hasn't seen.
func (r *Router) adoptMap(m *ShardMap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.smap != nil && m.Version <= r.smap.Version {
		return
	}
	r.smap = m
	for _, sh := range m.Shards {
		for _, addr := range append([]string{sh.Primary}, sh.Replicas...) {
			if _, ok := r.nodes[addr]; !ok {
				r.nodes[addr] = &routerNode{addr: addr}
			}
		}
	}
}

// shardMap returns the Router's current map (nil = unsharded).
func (r *Router) shardMap() *ShardMap {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.smap
}

// maybeReprobe runs Reprobe at most once per two seconds. Reads call
// it when their candidate pool has shrunk (a node marked down, or
// every replica epoch-stale after a failover), so transient failures
// heal instead of permanently evicting replicas from the read pool.
func (r *Router) maybeReprobe() {
	const every = 2 * time.Second
	now := time.Now().UnixNano()
	last := r.lastProbe.Load()
	if now-last < int64(every) {
		return
	}
	if r.lastProbe.CompareAndSwap(last, now) {
		_ = r.Reprobe()
	}
}

// Reprobe re-discovers every node's role and the current primary.
// Called automatically when a write can't reach the primary; callers
// may also invoke it after known topology changes.
func (r *Router) Reprobe() error {
	r.lastProbe.Store(time.Now().UnixNano())
	// Probe concurrently: a black-holed host costs one DialTimeout for
	// the whole sweep, not one per node — this runs inline on the
	// triggering statement's path.
	type probe struct {
		addr string
		st   *Status
		err  error
	}
	addrs := r.addrs()
	results := make(chan probe, len(addrs))
	for _, addr := range addrs {
		go func(addr string) {
			conn, err := r.dial(addr)
			if err != nil {
				r.setDown(addr)
				mShardErrors.Inc()
				results <- probe{addr: addr, err: fmt.Errorf("probe %s: %w", addr, err)}
				return
			}
			st, err := conn.Status()
			conn.Close()
			if err != nil {
				r.setDown(addr)
				mShardErrors.Inc()
				results <- probe{addr: addr, err: fmt.Errorf("probe %s: %w", addr, err)}
				return
			}
			results <- probe{addr: addr, st: st}
		}(addr)
	}
	// Keep every failed probe's error: a sweep that finds no primary
	// must say *why each node* was unusable, not silently report the
	// aggregate as "unreachable".
	var probes []probe
	var probeErrs []error
	for range addrs {
		p := <-results
		if p.st != nil {
			probes = append(probes, p)
		} else if p.err != nil {
			probeErrs = append(probeErrs, p.err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.primary = ""
	for _, p := range probes {
		n := r.nodes[p.addr]
		// A replica whose stream died fatally keeps answering probes
		// with a frozen applied position; treating it as down keeps
		// read-your-writes reads from stalling on it until its
		// operator restarts it.
		dead := p.st.Replica && p.st.Err != ""
		n.mu.Lock()
		n.replica, n.epoch, n.down = p.st.Replica, p.st.Epoch, dead
		n.mu.Unlock()
		if p.st.Epoch > r.epoch {
			r.epoch = p.st.Epoch
		}
	}
	// The primary is the non-replica at the highest epoch: after a
	// failover a fenced stale primary may still answer probes, but its
	// epoch gives it away.
	for _, p := range probes {
		if !p.st.Replica && p.st.Epoch == r.epoch {
			r.primary = p.addr
		}
	}
	if r.primary == "" {
		perr := errors.Join(probeErrs...)
		if r.smap != nil {
			// Sharded mode has no single primary: per-shard primaries
			// are derived from the freshly-probed roles on demand, and a
			// shard mid-failover must not fail the whole sweep. A sweep
			// that reached nobody still fails — OpenRouter against a
			// dead or misaddressed cluster should say so immediately,
			// not spin out a FailoverTimeout on the first statement.
			if len(probes) == 0 {
				return fmt.Errorf("client: no reachable nodes among %v: %w", r.cfg.Addrs, perr)
			}
			return nil
		}
		if perr != nil {
			return fmt.Errorf("client: no reachable primary among %v: %w", r.cfg.Addrs, perr)
		}
		return fmt.Errorf("client: no reachable primary among %v", r.cfg.Addrs)
	}
	return nil
}

// dial opens one configured connection to addr (probes, pool refills,
// and stale-pool retries all share it).
func (r *Router) dial(addr string) (*Conn, error) {
	c, err := DialConfig(Config{
		Addr: addr, Token: r.cfg.Token, Principal: r.cfg.Principal,
		DialTimeout: r.cfg.DialTimeout,
	})
	if err != nil {
		return nil, err
	}
	// Adopt the Router's static cohort label (lazy: it reaches the
	// server coalesced with the connection's first statement).
	for _, t := range r.cfg.Secrecy {
		c.AddSecrecy(t)
	}
	return c, nil
}

func (r *Router) addrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.nodes))
	for a := range r.nodes {
		out = append(out, a)
	}
	return out
}

func (r *Router) setDown(addr string) {
	r.mu.Lock()
	n := r.nodes[addr]
	r.mu.Unlock()
	if n != nil {
		n.mu.Lock()
		n.down = true
		n.mu.Unlock()
	}
}

// flushPool closes every idle connection to addr (they went stale
// together: a restarted server orphans the whole pool at once).
func (r *Router) flushPool(addr string) {
	r.mu.Lock()
	n := r.nodes[addr]
	r.mu.Unlock()
	if n == nil {
		return
	}
	n.mu.Lock()
	free := n.free
	n.free = nil
	n.mu.Unlock()
	for _, c := range free {
		c.Close()
	}
}

// IdleConns reports the number of idle pooled connections per node
// address — observability for tests and harnesses that assert the
// pool discipline (e.g. that a canceled statement's connection was
// retired rather than repooled).
func (r *Router) IdleConns() map[string]int {
	r.mu.Lock()
	nodes := make([]*routerNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()
	out := make(map[string]int, len(nodes))
	for _, n := range nodes {
		n.mu.Lock()
		out[n.addr] = len(n.free)
		n.mu.Unlock()
	}
	return out
}

// Primary returns the address writes currently route to.
func (r *Router) Primary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

// Close closes every pooled connection and marks the Router unusable:
// later Execs fail, and in-flight statements' checkins close their
// connections instead of repooling them.
func (r *Router) Close() error {
	r.mu.Lock()
	r.closed = true
	nodes := make([]*routerNode, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.Unlock()
	for _, n := range nodes {
		n.mu.Lock()
		free := n.free
		n.free = nil
		n.mu.Unlock()
		for _, c := range free {
			c.Close()
		}
	}
	return nil
}

// checkout borrows a connection to addr, dialing if the pool is
// empty; pooled reports which (a pooled connection may have gone
// stale while idle, so its first failure warrants a fresh-dial retry
// rather than declaring the node down).
func (r *Router) checkout(addr string) (c *Conn, pooled bool, err error) {
	r.mu.Lock()
	n := r.nodes[addr]
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, false, errors.New("client: router is closed")
	}
	if n == nil {
		return nil, false, fmt.Errorf("client: unknown node %s", addr)
	}
	n.mu.Lock()
	if len(n.free) > 0 {
		c := n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		n.mu.Unlock()
		return c, true, nil
	}
	n.mu.Unlock()
	c, err = r.dial(addr)
	return c, false, err
}

// checkin returns a healthy connection to its pool. Contaminated
// connections — any label other than the Router's base label (empty,
// or cfg.Secrecy's tags) — are closed instead: the next borrower must
// not inherit another statement's secrecy state.
func (r *Router) checkin(addr string, c *Conn) {
	if !c.Label().Equal(r.baseLabel) || !c.Integrity().IsEmpty() {
		c.Close()
		return
	}
	r.mu.Lock()
	n := r.nodes[addr]
	closed := r.closed
	r.mu.Unlock()
	if n == nil || closed {
		c.Close()
		return
	}
	n.mu.Lock()
	if len(n.free) < r.cfg.PoolSize {
		n.free = append(n.free, c)
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	c.Close()
}

// Statement classification — read-only (replica-balanced), DDL,
// transaction control, side-effecting — lives in classify.go: one
// parser-backed classifier shared by the text path, the prepared
// path, and shard routing, with the old prefix scans kept only as
// the fallback for unparsable input.

// Exec routes one statement: reads to replicas (with the
// read-your-writes token), everything else to the primary. On primary
// failure it reprobes — following a promotion — and retries within
// FailoverTimeout.
func (r *Router) Exec(sql string, params ...Value) (*Result, error) {
	return r.ExecContext(context.Background(), sql, params...)
}

// ExecContext is Exec with deadline/cancel propagation: the context
// bounds routing retries, and its cancellation crosses the wire as a
// CANCEL frame aborting the statement server-side.
func (r *Router) ExecContext(ctx context.Context, sql string, params ...Value) (*Result, error) {
	return r.exec(ctx, routedStmt{sqlText: sql, plan: planFor(sql)}, params)
}

func (r *Router) exec(ctx context.Context, rs routedStmt, params []Value) (*Result, error) {
	if rs.plan.txnControl {
		return nil, errors.New("client: the Router routes statements independently and cannot carry explicit transactions; dial a Conn to the primary instead (or use the ifdb database/sql driver, whose Tx pins one connection)")
	}
	if r.shardMap() != nil {
		return r.execSharded(ctx, rs, params)
	}
	if rs.plan.readOnly {
		return r.read(ctx, rs, params)
	}
	return r.write(ctx, rs, params)
}

// write executes on the primary, following promotions: a connection
// failure or an ErrReadOnlyReplica answer (the node we thought primary
// was demoted-by-comparison: a promotion happened elsewhere) triggers
// a reprobe and a retry against the new primary. Failover retries are
// at-least-once — a break between the old primary's commit and the
// Result frame re-executes the statement — so route non-idempotent
// writes through idempotent SQL (keyed inserts, absolute updates)
// when double-apply matters.
func (r *Router) write(ctx context.Context, rs routedStmt, params []Value) (*Result, error) {
	deadline := time.Now().Add(r.cfg.FailoverTimeout)
	var lastErr error
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		addr := r.Primary()
		if addr != "" {
			res, err := r.execOn(ctx, rs, addr, 0, params)
			if err == nil {
				r.toksFor(rs).noteWrite(res)
				return res, nil
			}
			lastErr = err
			if !retryable(err) && !isReadOnlyReplicaErr(err) && !isFencedErr(err) {
				return nil, err // real SQL error: routing can't help
			}
		} else if lastErr == nil {
			lastErr = errors.New("client: no known primary")
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("client: write failed over for %v: %w", r.cfg.FailoverTimeout, lastErr)
		}
		// Follow the promotion; rate-limited so a herd of blocked
		// writers shares one probe sweep instead of each serially
		// dialing every node per retry.
		mRouterRetries.Inc()
		r.maybeReprobe()
		time.Sleep(100 * time.Millisecond)
	}
}

// read load-balances across replicas whose epoch matches the token
// (stale-epoch tokens would be incomparable), falling back to the
// primary when no replica qualifies or every candidate fails.
func (r *Router) read(ctx context.Context, rs routedStmt, params []Value) (*Result, error) {
	var tok *rwTok
	if !r.cfg.AllowStaleReads {
		tok = r.toksFor(rs).global()
	}
	candidates := r.readCandidates(tok)
	if len(candidates) == 0 {
		// No usable replica (all down, or all epoch-stale after a
		// failover): heal the pool for future reads while this one
		// falls through to the primary.
		r.maybeReprobe()
		candidates = r.readCandidates(tok)
	}
	var lastErr error
	for _, addr := range candidates {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		wait := uint64(0)
		if tok != nil {
			wait = tok.lsn
		}
		res, err := r.execOn(ctx, rs, addr, wait, params)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !retryable(err) {
			if isReadOnlyReplicaErr(err) {
				// Misclassified mutator (e.g. a stored procedure that
				// writes, invoked as SELECT proc(...)): the primary
				// below can execute it.
				continue
			}
			if !isWaitTimeoutErr(err) {
				return nil, err // genuine SQL error: every node agrees
			}
			// The replica is too far behind (or its stream died with
			// its applied position frozen): take it out of the pool —
			// the next reprobe restores it if it was merely lagging —
			// and let the primary below answer without any wait.
			r.setDown(addr)
			continue
		}
		r.setDown(addr)
		r.maybeReprobe()
	}
	// Last resort: the primary answers reads without any wait.
	if addr := r.Primary(); addr != "" {
		res, err := r.execOn(ctx, rs, addr, 0, params)
		if err == nil {
			return res, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("client: no nodes available")
	}
	return nil, lastErr
}

// readCandidates orders replica addresses round-robin, skipping down
// nodes and epoch-mismatched replicas when a token is in play.
func (r *Router) readCandidates(tok *rwTok) []string {
	r.mu.Lock()
	var reps []*routerNode
	for _, n := range r.nodes {
		if n.addr != r.primary {
			reps = append(reps, n)
		}
	}
	r.mu.Unlock()
	var out []string
	for _, n := range reps {
		n.mu.Lock()
		ok := !n.down && n.replica && (tok == nil || n.epoch == tok.epoch)
		n.mu.Unlock()
		if ok {
			out = append(out, n.addr)
		}
	}
	if len(out) > 1 {
		rot := int(r.rr.Add(1)) % len(out)
		out = append(out[rot:], out[:rot]...)
	}
	return out
}

func (r *Router) execOn(ctx context.Context, rs routedStmt, addr string, waitLSN uint64, params []Value) (*Result, error) {
	return r.execOnShard(ctx, rs, addr, waitLSN, 0, params)
}

// execOnConn runs one statement on a borrowed connection — through
// the conn's cached prepared handle when the routed statement asked
// for it, else as one-shot text. Either way it is the v2 streaming
// path under the hood.
func execOnConn(ctx context.Context, c *Conn, rs routedStmt, waitLSN, shardVer uint64, params []Value) (*Result, error) {
	if rs.prepared {
		st, err := c.preparedFor(rs.sqlText)
		if err != nil {
			return nil, err
		}
		return c.execCtx(ctx, st, waitLSN, shardVer, "", params)
	}
	return c.execCtx(ctx, nil, waitLSN, shardVer, rs.sqlText, params)
}

func (r *Router) execOnShard(ctx context.Context, rs routedStmt, addr string, waitLSN, shardVer uint64, params []Value) (*Result, error) {
	c, pooled, err := r.checkout(addr)
	if err != nil {
		return nil, err
	}
	res, err := execOnConn(ctx, c, rs, waitLSN, shardVer, params)
	if err != nil && retryable(err) && pooled && !ctxDone(ctx) {
		// The pooled connection likely went stale while idle (server
		// restart, dropped keepalive) — and if one did, its poolmates
		// did too: flush them all and retry once on a genuinely fresh
		// dial. At-least-once caveat as in write(): the stale conn
		// died *sending*, not mid-commit, in the overwhelmingly common
		// case.
		c.Close()
		r.flushPool(addr)
		mRouterRetries.Inc()
		if c, err = r.dial(addr); err != nil {
			return nil, err
		}
		res, err = execOnConn(ctx, c, rs, waitLSN, shardVer, params)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Canceled cleanly, but the out-of-band CANCEL may still be
			// in flight; repooling would let it land on the next
			// borrower's statement. Retire the session instead.
			c.Close()
		} else if retryable(err) {
			// Transport-level failure: the connection is broken.
			c.Close()
		} else {
			// Server-reported error: the connection is healthy (and
			// its label state already re-synced); keep it pooled.
			r.checkin(addr, c)
		}
		return nil, err
	}
	r.checkin(addr, c)
	return res, nil
}

// ---------------------------------------------------------------------------
// Sharded routing (see shard.go for key extraction and the package
// comment of client/shard.go for the routing rules).

// execSharded routes one statement across the shard map: DDL fans out
// to every shard primary (each shard holds the full schema), a
// statement confined to one key — or to an IN (...) list whose keys
// all hash to one shard — routes to its owning shard, reads without a
// derivable key fan out and merge, and writes without one are refused
// — the Router will not guess where a write belongs.
func (r *Router) execSharded(ctx context.Context, rs routedStmt, params []Value) (*Result, error) {
	if rs.plan.ddl {
		return r.ddlFanout(ctx, rs, params)
	}
	m := r.shardMap()
	table, keys, ok := rs.plan.shardKeys(m, params)
	if rs.plan.readOnly {
		if ok {
			if _, single := singleShardOf(m, keys); single {
				return r.readSharded(ctx, rs, func(m *ShardMap) (uint32, bool) {
					return singleShardOf(m, keys)
				}, params)
			}
		}
		return r.fanoutRead(ctx, rs, params)
	}
	if !ok {
		if table == "" {
			// Label, sequence, and procedure statements (SELECT
			// addsecrecy(...), nextval, CALL) have no table to route
			// by and no meaningful shard to run on; multi-statement
			// batches land here too — they cannot be confined to one
			// shard as a unit.
			return nil, fmt.Errorf("client: statement is not routable in a sharded cluster (label/sequence/procedure statements and multi-statement batches have no single shard); dial a Conn to the relevant shard's primary")
		}
		return nil, fmt.Errorf("client: cannot derive a shard key: a sharded write must be confined to one shard (single-row INSERT, or key equality / single-shard IN list in WHERE with no OR)")
	}
	return r.writeKeys(ctx, rs, keys, params)
}

// writeKeys writes the statement to the shard owning keys, re-hashing
// under whatever map each retry holds (a stale-map refusal's adopted
// map may have a different shard count; an IN list that spanned one
// shard under the old map may span several under the new one, which
// refuses the write rather than splitting it).
func (r *Router) writeKeys(ctx context.Context, rs routedStmt, keys []string, params []Value) (*Result, error) {
	return r.writeSharded(ctx, rs, func(m *ShardMap) (uint32, error) {
		sid, single := singleShardOf(m, keys)
		if !single {
			return 0, fmt.Errorf("client: the statement's keys no longer map to one shard under map version %d", m.Version)
		}
		return sid, nil
	}, params)
}

// writeSharded executes a write on the shard that target derives from
// the current map, following both failovers (per-shard promotion,
// discovered by reprobe) and shard-map reconfiguration (a stale-map
// refusal carries the new map, which is adopted and the target
// re-derived).
func (r *Router) writeSharded(ctx context.Context, rs routedStmt, target func(m *ShardMap) (uint32, error), params []Value) (*Result, error) {
	deadline := time.Now().Add(r.cfg.FailoverTimeout)
	var lastErr error
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		m := r.shardMap()
		sid, err := target(m)
		if err != nil {
			return nil, err
		}
		if addr := r.shardPrimary(m, sid); addr != "" {
			mShardRouted.With(strconv.FormatUint(uint64(sid), 10)).Inc()
			res, err := r.execOnShard(ctx, rs, addr, 0, m.Version, params)
			if err == nil {
				r.toksFor(rs).noteShardWrite(sid, res)
				return res, nil
			}
			lastErr = err
			if nm := StaleShardMap(err); nm != nil {
				mStaleMapRefusals.Inc()
				if nm.Version > m.Version {
					r.adoptMap(nm)
					mRouterRetries.Inc()
					continue // re-route immediately under the new map
				}
				// The node is behind our map (mid-reconfiguration): the
				// deadline loop below retries until it catches up.
			} else if !retryable(err) && !isReadOnlyReplicaErr(err) && !isFencedErr(err) {
				return nil, err // real SQL error: routing can't help
			}
		} else if lastErr == nil {
			lastErr = fmt.Errorf("client: no known primary for shard %d", sid)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("client: shard write failed over for %v: %w", r.cfg.FailoverTimeout, lastErr)
		}
		mRouterRetries.Inc()
		r.maybeReprobe()
		time.Sleep(100 * time.Millisecond)
	}
}

// readSharded reads from the shard that target derives from the
// current map: its replicas first (carrying the shard's
// read-your-writes token), its primary as the fallback — the
// single-group read path scoped to the shard's members. A stale-map
// refusal carrying a newer map is adopted and the read re-routed
// once, with the target re-derived (the new map's shard count may
// differ). target returning false skips the attempt (the shard is
// gone from the adopted map).
func (r *Router) readSharded(ctx context.Context, rs routedStmt, target func(m *ShardMap) (uint32, bool), params []Value) (*Result, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		m := r.shardMap()
		sid, ok := target(m)
		if !ok {
			break
		}
		var tok *rwTok
		if !r.cfg.AllowStaleReads {
			tok = r.toksFor(rs).shard(sid)
		}
		adopted := false
		candidates := append(r.shardReadCandidates(m, sid, tok), "")
		for _, addr := range candidates {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			wait := uint64(0)
			if tok != nil && addr != "" {
				wait = tok.lsn
			}
			if addr == "" {
				// Last resort: the shard primary answers without a wait.
				if addr = r.shardPrimary(m, sid); addr == "" {
					continue
				}
			}
			mShardRouted.With(strconv.FormatUint(uint64(sid), 10)).Inc()
			res, err := r.execOnShard(ctx, rs, addr, wait, m.Version, params)
			if err == nil {
				return res, nil
			}
			lastErr = err
			if nm := StaleShardMap(err); nm != nil {
				mStaleMapRefusals.Inc()
				if nm.Version > m.Version {
					r.adoptMap(nm)
					adopted = true
					mRouterRetries.Inc()
					break // second attempt under the new map
				}
				continue // node behind our map: try another
			}
			if !retryable(err) {
				if isReadOnlyReplicaErr(err) || isWaitTimeoutErr(err) {
					if isWaitTimeoutErr(err) {
						r.setDown(addr)
					}
					continue // the shard primary fallback can answer
				}
				return nil, err
			}
			r.setDown(addr)
			r.maybeReprobe()
		}
		if !adopted {
			break
		}
	}
	if lastErr == nil {
		lastErr = errors.New("client: no nodes available for the target shard")
	}
	return nil, lastErr
}

// fanoutRead runs a shard-agnostic read on every shard and merges the
// results. Statements the distplan layer can split — keyless
// aggregates, ORDER BY + LIMIT, and EXPLAINs of either — take the
// scatter-gather path (scatter.go) and return the *distributed*
// answer: COUNT/SUM/GROUP BY finalize across shards exactly as a
// single node would compute them. Everything else keeps the plain
// union merge below: rows concatenate, Affected sums.
func (r *Router) fanoutRead(ctx context.Context, rs routedStmt, params []Value) (*Result, error) {
	m := r.shardMap()
	if rs.plan.explain || r.splitSpec(rs.sqlText, m) != nil {
		rows, err := r.scatterRows(ctx, rs, params)
		if err != nil {
			return nil, err
		}
		return drainRows(rows)
	}
	mFanoutWidth.Observe(int64(len(m.Shards)))
	type out struct {
		res *Result
		err error
	}
	results := make([]out, len(m.Shards))
	var wg sync.WaitGroup
	for i := range m.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.readSharded(ctx, rs, func(m *ShardMap) (uint32, bool) {
				return uint32(i), i < len(m.Shards)
			}, params)
			results[i] = out{res, err}
		}(i)
	}
	wg.Wait()
	// Report *every* failed shard, not just the first: a fan-out that
	// lost two shards to different causes (one down, one fenced) needs
	// both visible to be diagnosable.
	var errs []error
	for sid, o := range results {
		if o.err != nil {
			mShardErrors.Inc()
			errs = append(errs, fmt.Errorf("shard %d: %w", sid, o.err))
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("client: fan-out read: %w", errors.Join(errs...))
	}
	merged := &Result{}
	anyLabels := false
	for _, o := range results {
		if merged.Cols == nil {
			merged.Cols = o.res.Cols
		}
		if o.res.RowLabels != nil {
			anyLabels = true
		}
	}
	for _, o := range results {
		if anyLabels {
			labels := o.res.RowLabels
			if labels == nil {
				labels = make([]Label, len(o.res.Rows))
			}
			merged.RowLabels = append(merged.RowLabels, labels...)
		}
		merged.Rows = append(merged.Rows, o.res.Rows...)
		merged.Affected += o.res.Affected
	}
	return merged, nil
}

// ddlFanout applies a schema statement to every shard primary in
// shard order: rows are what shards partition; the schema (and the
// authority state it depends on) must exist everywhere.
func (r *Router) ddlFanout(ctx context.Context, rs routedStmt, params []Value) (*Result, error) {
	m := r.shardMap()
	var last *Result
	for sid := range m.Shards {
		res, err := r.writeToShard(ctx, rs, uint32(sid), params)
		if err != nil {
			return nil, fmt.Errorf("client: DDL on shard %d: %w", sid, err)
		}
		last = res
	}
	return last, nil
}

// writeToShard is writeSharded for statements addressed to a shard id
// directly (DDL fan-out).
func (r *Router) writeToShard(ctx context.Context, rs routedStmt, sid uint32, params []Value) (*Result, error) {
	return r.writeSharded(ctx, rs, func(m *ShardMap) (uint32, error) {
		if int(sid) >= len(m.Shards) {
			return 0, fmt.Errorf("client: shard %d no longer exists (map version %d)", sid, m.Version)
		}
		return sid, nil
	}, params)
}

// shardPrimary derives shard sid's current primary from the last
// probe: the non-replica member at the highest epoch (each shard is
// its own epoch chain — after a failover the promoted member's bumped
// epoch gives it away, exactly like unsharded discovery). Before any
// probe has classified the members, the map's static assignment wins.
func (r *Router) shardPrimary(m *ShardMap, sid uint32) string {
	if m == nil || int(sid) >= len(m.Shards) {
		return ""
	}
	sh := m.Shards[sid]
	best, bestEpoch := "", uint64(0)
	for _, addr := range append([]string{sh.Primary}, sh.Replicas...) {
		r.mu.Lock()
		n := r.nodes[addr]
		r.mu.Unlock()
		if n == nil {
			continue
		}
		n.mu.Lock()
		ok := !n.down && !n.replica
		epoch := n.epoch
		n.mu.Unlock()
		if ok && (best == "" || epoch > bestEpoch) {
			best, bestEpoch = addr, epoch
		}
	}
	if best == "" {
		return sh.Primary
	}
	return best
}

// shardReadCandidates orders shard sid's replica members round-robin,
// skipping down nodes and (token in play) epoch-mismatched replicas.
func (r *Router) shardReadCandidates(m *ShardMap, sid uint32, tok *rwTok) []string {
	if m == nil || int(sid) >= len(m.Shards) {
		return nil
	}
	primary := r.shardPrimary(m, sid)
	sh := m.Shards[sid]
	var out []string
	for _, addr := range append([]string{sh.Primary}, sh.Replicas...) {
		if addr == primary {
			continue
		}
		r.mu.Lock()
		n := r.nodes[addr]
		r.mu.Unlock()
		if n == nil {
			continue
		}
		n.mu.Lock()
		ok := !n.down && n.replica && (tok == nil || n.epoch == tok.epoch)
		n.mu.Unlock()
		if ok {
			out = append(out, addr)
		}
	}
	if len(out) > 1 {
		rot := int(r.rr.Add(1)) % len(out)
		out = append(out[rot:], out[:rot]...)
	}
	return out
}

// isReadOnlyReplicaErr matches the server-reported rejection a demoted
// (or never-primary) node gives writes; it signals the Router to chase
// the real primary rather than surface the error.
func isReadOnlyReplicaErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "read-only replica")
}

// isFencedErr matches a write-fenced primary's rejection (it observed
// a newer epoch): like a read-only-replica answer, it means a
// promotion happened elsewhere and the Router should chase it.
func isFencedErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "engine: fenced")
}

// isWaitTimeoutErr matches a replica's read-your-writes wait timeout —
// a routing signal (pick another node), not a statement failure.
func isWaitTimeoutErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "read-your-writes wait timed out")
}
