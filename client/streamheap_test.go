package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/wire"
)

// The million-row fixture: one server, one seeding, shared by the
// bounded-heap and cancel-latency tests below. Tests in this package
// run sequentially, so plain package state under a sync.Once is safe;
// the server lives for the test binary's lifetime.
const milRows = 1_000_000

var (
	milOnce sync.Once
	milDB   *ifdb.DB
	milAddr string
)

func millionRowServer(t *testing.T) (*ifdb.DB, string) {
	t.Helper()
	milOnce.Do(func() {
		// Not startServer: that registers a cleanup on the first caller's
		// t, which would tear the shared server down between tests.
		db := ifdb.MustOpen(ifdb.Config{IFC: true})
		srv := wire.NewServer(db.Engine(), "")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		sess := db.AdminSession()
		if _, err := sess.Exec(`CREATE TABLE mil (k BIGINT PRIMARY KEY)`); err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < milRows; lo += 2000 {
			var b strings.Builder
			b.WriteString(`INSERT INTO mil VALUES `)
			for k := lo; k < lo+2000; k++ {
				if k > lo {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "(%d)", k)
			}
			if _, err := sess.Exec(b.String()); err != nil {
				t.Fatal(err)
			}
		}
		milDB, milAddr = db, ln.Addr().String()
	})
	if milDB == nil {
		t.Fatal("million-row fixture failed to build")
	}
	return milDB, milAddr
}

// liveBytes returns the live heap. Two forced collections: one is not
// enough, because HeapAlloc still counts garbage on lazily-swept spans
// and the decode churn of a fast stream leaves a lot of it — measured
// as tens of MB of phantom "growth" that a second cycle sweeps away.
func liveBytes() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestStreamBoundedHeap is the tentpole's acceptance claim: a keyless
// SELECT over a million rows streams end-to-end — the server never
// materializes the result, the client consumes chunk by chunk — so the
// process's live heap stays flat while a result far bigger than any
// buffer flows through it. (Server and client share this process, so
// the bound covers both halves at once.)
func TestStreamBoundedHeap(t *testing.T) {
	_, addr := millionRowServer(t)
	conn, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	base := liveBytes()
	rows, err := conn.Query(`SELECT k FROM mil`)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	var peak uint64
	for rows.Next() {
		n++
		if n%200_000 == 0 {
			if lb := liveBytes(); lb > peak {
				peak = lb
			}
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if n != milRows {
		t.Fatalf("streamed %d rows, want %d", n, milRows)
	}
	// A materialized result would hold ≥40MB of row values on the server
	// alone (plus the client copy). Mid-stream live growth must stay far
	// below that: the stream's working set is a few chunks.
	const bound = 32 << 20
	if peak > base+bound {
		t.Fatalf("live heap grew %d bytes mid-stream (base %d, peak %d); result is being materialized",
			peak-base, base, peak)
	}
}

// TestConnCancelMillionRowScan: cancel latency against a live
// million-row scan. Under the legacy executor the statement scanned
// all million rows before the first chunk left the server, so a cancel
// sent after the first rows arrived had nothing left to save. Under
// the streaming executor the scan is still running when the cancel
// lands, the engine stops within one iterator batch, and the stream
// dies promptly — asserted with a wall-clock bound and a
// far-from-complete row count.
func TestConnCancelMillionRowScan(t *testing.T) {
	_, addr := millionRowServer(t)
	conn, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := conn.QueryContext(ctx, `SELECT k FROM mil`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("stream died after %d rows: %v", i, rows.Err())
		}
	}
	cancel()
	t0 := time.Now()
	n := 10
	for rows.Next() {
		n++
	}
	lat := time.Since(t0)
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", err)
	}
	rows.Close()
	if n >= milRows/2 {
		t.Fatalf("server streamed %d of %d rows despite the cancel", n, milRows)
	}
	if lat > 2*time.Second {
		t.Fatalf("cancel-to-termination latency %v", lat)
	}
	// The connection survives the in-stream cancel.
	if _, err := conn.Exec(`SELECT COUNT(*) FROM mil WHERE k = 0`); err != nil {
		t.Fatalf("conn dead after canceled scan: %v", err)
	}
}
