package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/wire"
)

// TestPreparedSkipsReparse asserts the point of prepared statements:
// after Prepare, executions never invoke the SQL parser (the engine
// counter stands still), while distinct one-shot texts each pay a
// parse.
func TestPreparedSkipsReparse(t *testing.T) {
	db, addr := startServer(t, "")
	if _, err := db.AdminSession().Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	st, err := conn.Prepare(`INSERT INTO kv VALUES ($1, $2)`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumParams() != 2 {
		t.Fatalf("NumParams: %d", st.NumParams())
	}

	base := db.Engine().ParseCount()
	for i := 0; i < 50; i++ {
		if _, err := st.Exec(client.Value(ifdb.Int(int64(i))), client.Value(ifdb.Text("v"))); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Engine().ParseCount(); got != base {
		t.Fatalf("prepared executions parsed: count moved %d -> %d", base, got)
	}

	// The anti-pattern prepared statements exist to kill: every
	// distinct text costs a parse.
	for i := 0; i < 5; i++ {
		if _, err := conn.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'inline')`, 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Engine().ParseCount(); got != base+5 {
		t.Fatalf("inline texts: count moved %d -> %d, want +5", base, got)
	}

	// Prepared query round trip.
	q, err := conn.Prepare(`SELECT v FROM kv WHERE k = $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	rows, err := q.Query(client.Value(ifdb.Int(7)))
	if err != nil {
		t.Fatal(err)
	}
	var v string
	n := 0
	for rows.Next() {
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 1 || v != "v" {
		t.Fatalf("prepared query: %d rows, v=%q", n, v)
	}
}

// TestStreamingRows exercises multi-chunk streams: a result bigger
// than the server's chunk size arrives in pieces, iterates completely,
// and both full consumption and early Close leave the connection
// reusable.
func TestStreamingRows(t *testing.T) {
	db, addr := startServer(t, "")
	sess := db.AdminSession()
	if _, err := sess.Exec(`CREATE TABLE nums (k BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO nums VALUES (%d)`, i)); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	rows, err := conn.Query(`SELECT k FROM nums ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for rows.Next() {
		var k int64
		if err := rows.Scan(&k); err != nil {
			t.Fatal(err)
		}
		if k != want {
			t.Fatalf("row %d: got %d", want, k)
		}
		want++
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if want != 1000 {
		t.Fatalf("iterated %d rows", want)
	}

	// A second statement while a stream is open is refused (and is not
	// a retryable failure), then works after Close drains the stream.
	rows, err = conn.Query(`SELECT k FROM nums`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if _, err := conn.Exec(`SELECT 1`); err == nil {
		t.Fatal("statement during open stream succeeded")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`SELECT 1`); err != nil {
		t.Fatalf("conn unusable after early Close: %v", err)
	}
}

// TestConnContextCancel: a context deadline aborts the running
// statement server-side via the out-of-band CANCEL connection; the
// error matches the context's, and the connection survives (the
// server answered on it — no socket was severed).
func TestConnContextCancel(t *testing.T) {
	db, addr := startServer(t, "")
	sess := db.AdminSession()
	if _, err := sess.Exec(`CREATE TABLE big (k BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO big VALUES (%d)`, i)); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = conn.ExecContext(ctx, `SELECT sleep(50) FROM big`) // 5s if uncanceled
	if err == nil {
		t.Fatal("canceled statement succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
	// The server answered the cancel on the statement's own (healthy)
	// connection: the error must keep its server-reported identity —
	// a transport-error misclassification would make the Router and
	// the database/sql pool retire healthy connections on every
	// user-initiated cancel.
	if client.IsTransportError(err) {
		t.Fatalf("clean cancel classified as transport error: %v", err)
	}
	// The same connection keeps working: the cancel rode a separate
	// connection and the statement failed gracefully on this one.
	if _, err := conn.Exec(`SELECT COUNT(*) FROM big`); err != nil {
		t.Fatalf("conn dead after cancel: %v", err)
	}
}

// TestPreparedSurvivesReconnect: server-side statement handles die
// with their connection; an AutoReconnect Stmt re-prepares itself on
// the fresh connection transparently.
func TestPreparedSurvivesReconnect(t *testing.T) {
	dir := t.TempDir()
	db, err := ifdb.Open(ifdb.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(db.Engine(), "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)
	if _, err := db.AdminSession().Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	conn, err := client.DialConfig(client.Config{
		Addr: addr, AutoReconnect: true,
		RedialTimeout: 10 * time.Second, RedialInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	st, err := conn.Prepare(`INSERT INTO kv VALUES ($1, $2)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec(client.Value(ifdb.Int(1)), client.Value(ifdb.Text("pre"))); err != nil {
		t.Fatal(err)
	}

	// Kill and restart the server on the same port.
	srv.Close()
	db.Close()
	db2, err := ifdb.Open(ifdb.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	srv2 := wire.NewServer(db2.Engine(), "")
	var ln2 net.Listener
	for deadline := time.Now().Add(5 * time.Second); ; {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relisten: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	go srv2.Serve(ln2)
	defer srv2.Close()

	// The handle is gone server-side; the Stmt must re-prepare.
	if _, err := st.Exec(client.Value(ifdb.Int(2)), client.Value(ifdb.Text("post"))); err != nil {
		t.Fatalf("prepared exec across restart: %v", err)
	}
	res, err := conn.Exec(`SELECT COUNT(*) FROM kv`)
	if err != nil || res.Rows[0][0].Int() != 2 {
		t.Fatalf("post-restart state: %+v %v", res, err)
	}
}
