// Conn: one connection to one IFDB server, with client-held label
// state transmitted lazily (the paper's modified-libpq design, §7.2).
// See doc.go for the package overview.

package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"ifdb/internal/label"
	"ifdb/internal/obs"
	"ifdb/internal/types"
	"ifdb/internal/wire"
)

// Value re-exports the SQL datum type for callers.
type Value = types.Value

// Label re-exports the label type.
type Label = label.Label

// Tag re-exports the tag type.
type Tag = label.Tag

// Result is a statement outcome as seen by the client.
type Result struct {
	Cols      []string
	Rows      [][]Value
	RowLabels []Label
	Affected  int64

	// Epoch and LSN are the server's promotion generation and WAL
	// position after the statement. On a primary the pair covers every
	// commit the statement made — the Router keeps it from its last
	// write as the read-your-writes token.
	Epoch uint64
	LSN   uint64
}

// Status is a node's replication role, as answered by a STATUS probe.
type Status struct {
	// Replica reports whether the node is a read-only replica.
	Replica bool
	// Epoch is the node's promotion generation.
	Epoch uint64
	// AppliedLSN is the primary LSN a replica has applied through (in
	// the primary's LSN space); 0 on a primary.
	AppliedLSN uint64
	// WALEnd is the node's own WAL append edge (0 in-memory). On a
	// primary, AppliedLSN of an attached replica approaches it.
	WALEnd uint64
	// Err is the replica's fatal stream error, if any.
	Err string
}

// Config configures a connection.
type Config struct {
	// Addr is the server address; Token attests that this client is a
	// trusted platform (§2); Principal is the acting principal
	// established by the platform's authentication code.
	Addr      string
	Token     string
	Principal uint64

	// DialTimeout bounds each connection attempt (0 = no timeout).
	DialTimeout time.Duration

	// AutoReconnect redials transparently when the connection breaks
	// mid-use, re-syncing the client's label and principal before the
	// statement is retried — the client-side label state (the paper's
	// libpq design, §7.2) is exactly what makes this safe: the client
	// owns the authoritative view, so a fresh server session can be
	// brought back to it with one lazy sync. A statement is retried at
	// most once, on a connection error only (never on a server-reported
	// error); an explicit transaction that was open at the break is
	// gone, and the retried statement runs in a fresh autocommit
	// context. The retry is at-least-once: when the break lands
	// between the server's commit and the client reading the Result,
	// the retry re-executes an already-committed statement, so a
	// non-idempotent write (v = v + 1) can apply twice. Keep
	// AutoReconnect off where either distinction matters.
	AutoReconnect bool

	// RedialTimeout bounds the total time AutoReconnect spends trying
	// to reach the server again (default 10s); RedialInterval paces the
	// attempts (default 100ms).
	RedialTimeout  time.Duration
	RedialInterval time.Duration
}

// Conn is one connection to an IFDB server. Not safe for concurrent
// use (one connection per worker, like libpq).
type Conn struct {
	cfg Config

	c net.Conn
	r *bufio.Reader
	w *bufio.Writer

	principal uint64
	plabel    Label
	pilabel   Label
	dirty     bool // label/principal changed since last sync

	// Cancellation identity from the HelloOK handshake: the session id
	// and the key that authorizes an out-of-band CANCEL for it (zero =
	// v1 server, no cancellation).
	sessID    uint64
	cancelKey uint64

	// gen counts successful handshakes. Server-side prepared handles
	// die with their connection, so a Stmt records the gen it was
	// prepared under and re-prepares itself when the conn redialed.
	gen int

	// stream is the open streaming result, if any: the connection is
	// pinned to it until the stream is drained or closed.
	stream *connRows

	// broken marks a connection whose stream died mid-frame: the
	// socket position is undefined, so every later operation fails
	// (retryably — AutoReconnect redials) instead of desynchronizing.
	broken bool

	// stmts caches prepared statements by text for the Router, which
	// multiplexes statements over pooled conns and wants each conn to
	// prepare a routed statement at most once (see preparedFor).
	stmts map[string]*Stmt

	// lastTraceID is the trace ID stamped on the most recent statement
	// this connection sent; servers echo it in slow-query audit lines
	// and the \stats breakdown, tying client and server views together.
	lastTraceID uint64
}

// serverError marks an error the server reported (SQL errors, refused
// control operations): the connection is healthy and the statement
// definitively failed, so AutoReconnect must not retry it. shardMap
// carries the server's current shard map when the refusal was a
// stale-shard-map fence (see StaleShardMap).
type serverError struct {
	msg      string
	shardMap *wire.ShardMap
}

func (e *serverError) Error() string { return e.msg }

// clientError marks a local usage error (e.g. a statement issued
// while a streaming result is still open): the connection did not
// fail and redialing cannot help, so AutoReconnect must not retry.
type clientError struct{ msg string }

func (e *clientError) Error() string { return e.msg }

// errBroken is returned for every operation on a connection whose
// stream died mid-frame. It is retryable: a redial resets the
// connection to a clean frame boundary.
var errBroken = errors.New("client: connection broken by an aborted result stream")

// IsTransportError reports whether err was a connection-level failure
// (broken socket, unexpected frame) rather than a server-reported
// statement error or a local usage error. After a transport error the
// connection's state is unknown: the statement may or may not have
// executed, and the conn should be discarded (or left to
// AutoReconnect). The database/sql driver uses this to retire pooled
// connections.
func IsTransportError(err error) bool { return retryable(err) }

// StaleShardMap extracts the fresh shard map a server attached to a
// stale-map refusal, or nil if err was anything else. The Router
// adopts it and re-routes; other callers can surface it to operators.
func StaleShardMap(err error) *ShardMap {
	var se *serverError
	if errors.As(err, &se) {
		return se.shardMap
	}
	return nil
}

// Dial connects and performs the Hello handshake. token attests that
// this client is a trusted platform (§2); principal is the acting
// principal established by the platform's authentication code.
func Dial(addr, token string, principal uint64) (*Conn, error) {
	return DialConfig(Config{Addr: addr, Token: token, Principal: principal})
}

// DialConfig connects with explicit configuration (timeouts,
// auto-reconnect).
func DialConfig(cfg Config) (*Conn, error) {
	if cfg.RedialTimeout <= 0 {
		cfg.RedialTimeout = 10 * time.Second
	}
	if cfg.RedialInterval <= 0 {
		cfg.RedialInterval = 100 * time.Millisecond
	}
	c := &Conn{cfg: cfg, principal: cfg.Principal}
	if err := c.handshake(); err != nil {
		return nil, err
	}
	return c, nil
}

// handshake dials and performs Hello as the connection's *current*
// principal (which SetPrincipal may have moved past cfg.Principal).
func (c *Conn) handshake() error {
	var nc net.Conn
	var err error
	if c.cfg.DialTimeout > 0 {
		nc, err = net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	} else {
		nc, err = net.Dial("tcp", c.cfg.Addr)
	}
	if err != nil {
		return err
	}
	r := bufio.NewReader(nc)
	w := bufio.NewWriter(nc)
	h := &wire.Hello{Token: c.cfg.Token, Principal: c.principal}
	if err := wire.WriteFrame(w, wire.MsgHello, h.Encode()); err != nil {
		nc.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		nc.Close()
		return err
	}
	typ, payload, err := wire.ReadFrame(r)
	if err != nil {
		nc.Close()
		return err
	}
	switch typ {
	case wire.MsgHelloOK:
		ok, derr := wire.DecodeHelloOK(payload)
		if derr != nil {
			nc.Close()
			return derr
		}
		c.c, c.r, c.w = nc, r, w
		c.sessID, c.cancelKey = ok.SessionID, ok.CancelKey
		c.gen++
		c.broken = false
		c.stream = nil
		return nil
	case wire.MsgCtrlRes:
		res, derr := wire.DecodeCtrlRes(payload)
		nc.Close()
		if derr != nil {
			return derr
		}
		return &serverError{msg: res.Err}
	default:
		nc.Close()
		return fmt.Errorf("client: unexpected handshake frame %c", typ)
	}
}

// redial re-establishes a broken connection within the redial budget
// and marks the label/principal state dirty so the next statement
// re-syncs it (the fresh server session starts empty).
func (c *Conn) redial() error {
	if c.c != nil {
		c.c.Close()
	}
	deadline := time.Now().Add(c.cfg.RedialTimeout)
	for {
		err := c.handshake()
		if err == nil {
			c.dirty = true
			return nil
		}
		var se *serverError
		if errors.As(err, &se) {
			// The server is back but refuses us (e.g. token changed):
			// retrying cannot help.
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("client: reconnect to %s failed: %w", c.cfg.Addr, err)
		}
		time.Sleep(c.cfg.RedialInterval)
	}
}

// retryable reports whether err warrants a redial-and-retry: any
// transport-level failure qualifies; server-reported errors and local
// usage errors never do.
func retryable(err error) bool {
	var se *serverError
	var ce *clientError
	return err != nil && !errors.As(err, &se) && !errors.As(err, &ce)
}

// Close says goodbye and closes the socket.
func (c *Conn) Close() error {
	_ = wire.WriteFrame(c.w, wire.MsgClose, nil)
	_ = c.w.Flush()
	return c.c.Close()
}

// Label returns the client's view of the process label.
func (c *Conn) Label() Label { return c.plabel.Clone() }

// Integrity returns the client's view of the process integrity label.
func (c *Conn) Integrity() Label { return c.pilabel.Clone() }

// DropIntegrity lowers the local integrity label (always safe); the
// change reaches the server with the next statement.
func (c *Conn) DropIntegrity(t Tag) {
	c.pilabel = c.pilabel.Remove(t)
	c.dirty = true
}

// Endorse asks the server to verify authority and raise the integrity
// label (round-trips, like Declassify).
func (c *Conn) Endorse(t Tag) error {
	_, err := c.Exec(fmt.Sprintf("SELECT endorse(%d)", uint64(t)))
	return err
}

// Principal returns the acting principal.
func (c *Conn) Principal() uint64 { return c.principal }

// AddSecrecy raises the local process label; the change reaches the
// server with the next statement. (Raising is free client-side; the
// server re-checks the clearance rule inside serializable
// transactions.)
func (c *Conn) AddSecrecy(t Tag) {
	c.plabel = c.plabel.Add(t)
	c.dirty = true
}

// SetPrincipal switches the acting principal (platform authentication
// code only).
func (c *Conn) SetPrincipal(p uint64) {
	c.principal = p
	c.dirty = true
}

// Declassify asks the server to verify authority and lower the label.
// Unlike AddSecrecy this must round-trip: removing a tag without
// authority would violate the flow rules, so we issue the SQL function
// and adopt the server's resulting label.
func (c *Conn) Declassify(t Tag) error {
	_, err := c.Exec(fmt.Sprintf("SELECT declassify(%d)", uint64(t)))
	return err
}

// Exec sends one statement (with lazily-coalesced label sync) and
// returns the result. The connection adopts the server's post-
// statement label, which reflects any addsecrecy()/declassify() the
// statement performed. With AutoReconnect, a broken connection is
// redialed, the label/principal re-synced, and the statement retried
// once.
func (c *Conn) Exec(sql string, params ...Value) (*Result, error) {
	return c.ExecWait(0, sql, params...)
}

// ExecWait is Exec with a read-your-writes token: when waitLSN is
// non-zero and the server is a replica, execution is delayed until the
// replica has applied the primary's log through waitLSN. The Router
// stamps replica reads with the token from its last primary write.
func (c *Conn) ExecWait(waitLSN uint64, sql string, params ...Value) (*Result, error) {
	return c.ExecShard(waitLSN, 0, sql, params...)
}

// ExecShard is ExecWait carrying a shard-map version: a sharded server
// refuses the statement when shardVer is non-zero and outdated,
// attaching its current map to the error (StaleShardMap). The Router
// stamps every statement it routes by the map with the map's version.
func (c *Conn) ExecShard(waitLSN, shardVer uint64, sql string, params ...Value) (*Result, error) {
	res, err := c.execOnce(waitLSN, shardVer, sql, params)
	if err == nil || !c.cfg.AutoReconnect || !retryable(err) {
		return res, err
	}
	if rerr := c.redial(); rerr != nil {
		return nil, rerr
	}
	return c.execOnce(waitLSN, shardVer, sql, params)
}

// execOnce runs one statement over the v2 EXECUTE/ROWS path and
// buffers the stream into a Result — the text API is a shim over the
// streaming protocol.
func (c *Conn) execOnce(waitLSN, shardVer uint64, sql string, params []Value) (*Result, error) {
	rows, err := c.startExec(0, sql, waitLSN, shardVer, params, 0, nil, nil)
	if err != nil {
		return nil, err
	}
	return rows.drain()
}

// startExec sends one EXECUTE frame — a prepared handle (stmtID != 0)
// or inline one-shot SQL — and reads the stream's first frame, so a
// statement failure (including a stale-shard-map refusal) surfaces
// here rather than mid-iteration. stopWatch and onClose, when set,
// are owned by the returned stream and are guaranteed to run exactly
// once whenever it ends, including on every failure path of this
// call.
func (c *Conn) startExec(stmtID uint64, sqlText string, waitLSN, shardVer uint64, params []Value, chunkRows uint32, stopWatch func(), onClose func(error)) (*connRows, error) {
	finish := func(err error) error {
		if stopWatch != nil {
			stopWatch()
		}
		if onClose != nil {
			onClose(err)
		}
		return err
	}
	if c.broken {
		return nil, finish(errBroken)
	}
	if c.stream != nil {
		return nil, finish(&clientError{msg: "client: a streaming result is still open on this connection"})
	}
	e := &wire.Execute{
		StmtID: stmtID, SQL: sqlText, Params: params,
		WaitLSN: waitLSN, ShardVer: shardVer, ChunkRows: chunkRows,
		TraceID: obs.NewTraceID(),
	}
	c.lastTraceID = e.TraceID
	if c.dirty {
		e.SyncLabel = true
		e.Label = c.plabel
		e.ILabel = c.pilabel
		e.Principal = c.principal
	}
	payload, err := e.Encode()
	if err != nil {
		return nil, finish(err)
	}
	if err := wire.WriteFrame(c.w, wire.MsgExecute, payload); err != nil {
		return nil, finish(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, finish(err)
	}
	rows := &connRows{c: c, i: -1, stopWatch: stopWatch, onClose: onClose}
	c.stream = rows
	if !rows.fetch() {
		// First frame failed: a transport error (stream released, conn
		// marked broken) or a single-chunk statement error.
		return nil, rows.err
	}
	if rows.err != nil {
		return nil, rows.err
	}
	return rows, nil
}

// control round-trips a control message. Pending label/principal
// changes are flushed first (control frames carry no sync fields, and
// authority operations must run under the client's true identity and
// label). AutoReconnect applies as in Exec.
func (c *Conn) control(ctl *wire.Control) (*wire.CtrlRes, error) {
	res, err := c.controlOnce(ctl)
	if err == nil || !c.cfg.AutoReconnect || !retryable(err) {
		return res, err
	}
	if rerr := c.redial(); rerr != nil {
		return nil, rerr
	}
	return c.controlOnce(ctl)
}

func (c *Conn) controlOnce(ctl *wire.Control) (*wire.CtrlRes, error) {
	if c.dirty {
		if _, err := c.execOnce(0, 0, "SELECT 1", nil); err != nil {
			return nil, err
		}
	}
	resp, err := c.roundTrip(wire.MsgControl, ctl.Encode(), wire.MsgCtrlRes)
	if err != nil {
		return nil, err
	}
	res, err := wire.DecodeCtrlRes(resp)
	if err != nil {
		return nil, err
	}
	if res.Err != "" {
		return nil, &serverError{msg: res.Err}
	}
	return res, nil
}

// roundTrip sends one frame and reads one expected response frame.
func (c *Conn) roundTrip(typ byte, payload []byte, wantTyp byte) ([]byte, error) {
	if c.broken {
		return nil, errBroken
	}
	if c.stream != nil {
		return nil, &clientError{msg: "client: a streaming result is still open on this connection"}
	}
	if err := wire.WriteFrame(c.w, typ, payload); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	gotTyp, resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	if gotTyp != wantTyp {
		return nil, fmt.Errorf("client: unexpected frame %c", gotTyp)
	}
	return resp, nil
}

// Status probes the server's replication role (replica?, epoch,
// applied LSN, WAL end). The coordinator's health checks and the
// Router's primary discovery are built on it.
func (c *Conn) Status() (*Status, error) {
	return c.statusRequest(wire.MsgStatus)
}

// PromoteNode asks a replica server to promote itself to a writable
// primary (failover). The returned status reflects the node after the
// attempt; a non-nil error reports why promotion was refused.
func (c *Conn) PromoteNode() (*Status, error) {
	return c.statusRequest(wire.MsgPromote)
}

func (c *Conn) statusRequest(typ byte) (*Status, error) {
	resp, err := c.roundTrip(typ, nil, wire.MsgStatusRes)
	// STATUS is idempotent and safe to retry; PROMOTE is not — a break
	// after the server promoted but before the reply would re-send the
	// command (and report failure for a promotion that succeeded),
	// tempting the caller into promoting a second node. The caller
	// resolves an ambiguous PROMOTE with a fresh Status probe instead.
	if typ == wire.MsgStatus && retryable(err) && c.cfg.AutoReconnect {
		if rerr := c.redial(); rerr != nil {
			return nil, rerr
		}
		resp, err = c.roundTrip(typ, nil, wire.MsgStatusRes)
	}
	if err != nil {
		return nil, err
	}
	st, err := wire.DecodeStatus(resp)
	if err != nil {
		return nil, err
	}
	out := &Status{Replica: st.Replica, Epoch: st.Epoch, AppliedLSN: st.AppliedLSN, WALEnd: st.WALEnd, Err: st.Err}
	if typ == wire.MsgPromote && st.Err != "" {
		return out, &serverError{msg: st.Err}
	}
	return out, nil
}

// ShardMap fetches the server's current view of the cluster shard map
// (nil when the deployment is unsharded). The Router calls it at open
// to discover the topology; operators can watch it via ifdb-cli
// \shardmap.
func (c *Conn) ShardMap() (*ShardMap, error) {
	resp, err := c.roundTrip(wire.MsgShardMap, nil, wire.MsgShardMapRes)
	if err != nil {
		return nil, err
	}
	if len(resp) == 0 {
		return nil, nil
	}
	return wire.DecodeShardMap(resp)
}

// CreatePrincipal creates a principal server-side (requires an empty
// label, like every authority-state mutation).
func (c *Conn) CreatePrincipal(name string) (uint64, error) {
	res, err := c.control(&wire.Control{Op: "create_principal", Strs: []string{name}})
	if err != nil {
		return 0, err
	}
	return res.Nums[0], nil
}

// CreateTag creates a named tag owned by the acting principal.
func (c *Conn) CreateTag(name string, compounds ...string) (Tag, error) {
	res, err := c.control(&wire.Control{Op: "create_tag", Strs: append([]string{name}, compounds...)})
	if err != nil {
		return 0, err
	}
	return Tag(res.Nums[0]), nil
}

// LookupTag resolves a tag name server-side.
func (c *Conn) LookupTag(name string) (Tag, error) {
	res, err := c.control(&wire.Control{Op: "lookup_tag", Strs: []string{name}})
	if err != nil {
		return 0, err
	}
	return Tag(res.Nums[0]), nil
}

// Delegate grants authority for t to grantee.
func (c *Conn) Delegate(grantee uint64, t Tag) error {
	_, err := c.control(&wire.Control{Op: "delegate", Nums: []uint64{grantee, uint64(t)}})
	return err
}

// Revoke withdraws a delegation.
func (c *Conn) Revoke(grantee uint64, t Tag) error {
	_, err := c.control(&wire.Control{Op: "revoke", Nums: []uint64{grantee, uint64(t)}})
	return err
}

// LastTraceID returns the trace ID stamped on the most recent
// statement this connection sent (0 before the first statement). Grep
// the server's audit/slow-query log for obs.TraceID-formatted IDs to
// find the matching server-side lines.
func (c *Conn) LastTraceID() uint64 { return c.lastTraceID }

// StmtStats is the server-side timing breakdown of this connection's
// most recent statement, as recorded by the server session.
type StmtStats struct {
	// TraceID echoes the ID the client stamped on the statement.
	TraceID uint64
	// ParseNs is parser time (0 for prepared executions — they never
	// parse); PlanNs is server-side admission (label sync, shard
	// fencing, read-your-writes waits); ExecNs is engine execution;
	// StreamNs is result encoding and streaming.
	ParseNs, PlanNs, ExecNs, StreamNs int64
}

// Stats fetches the server's timing breakdown for the most recent
// statement on this connection (ifdb-cli's \stats). It deliberately
// bypasses the label-sync flush and reconnect machinery: both would
// run a statement of their own and overwrite the very breakdown being
// asked for.
func (c *Conn) Stats() (*StmtStats, error) {
	resp, err := c.roundTrip(wire.MsgControl, (&wire.Control{Op: "stats"}).Encode(), wire.MsgCtrlRes)
	if err != nil {
		return nil, err
	}
	res, err := wire.DecodeCtrlRes(resp)
	if err != nil {
		return nil, err
	}
	if res.Err != "" {
		return nil, &serverError{msg: res.Err}
	}
	if len(res.Nums) < 5 {
		return nil, fmt.Errorf("client: malformed stats reply (%d fields)", len(res.Nums))
	}
	return &StmtStats{
		TraceID: res.Nums[0],
		ParseNs: int64(res.Nums[1]), PlanNs: int64(res.Nums[2]),
		ExecNs: int64(res.Nums[3]), StreamNs: int64(res.Nums[4]),
	}, nil
}

// HasAuthority asks whether the acting principal can declassify t.
func (c *Conn) HasAuthority(t Tag) (bool, error) {
	res, err := c.control(&wire.Control{Op: "has_authority", Nums: []uint64{uint64(t)}})
	if err != nil {
		return false, err
	}
	return res.Nums[0] == 1, nil
}
