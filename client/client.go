// Package client is the network client library for IFDB — the analog
// of the paper's modified libpq (§7.2). It keeps the process label and
// acting principal locally and transmits changes lazily, coalesced
// with the next statement, exactly as the paper's protocol does.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"ifdb/internal/label"
	"ifdb/internal/types"
	"ifdb/internal/wire"
)

// Value re-exports the SQL datum type for callers.
type Value = types.Value

// Label re-exports the label type.
type Label = label.Label

// Tag re-exports the tag type.
type Tag = label.Tag

// Result is a statement outcome as seen by the client.
type Result struct {
	Cols      []string
	Rows      [][]Value
	RowLabels []Label
	Affected  int64
}

// Conn is one connection to an IFDB server. Not safe for concurrent
// use (one connection per worker, like libpq).
type Conn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer

	principal uint64
	plabel    Label
	pilabel   Label
	dirty     bool // label/principal changed since last sync
}

// Dial connects and performs the Hello handshake. token attests that
// this client is a trusted platform (§2); principal is the acting
// principal established by the platform's authentication code.
func Dial(addr, token string, principal uint64) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{c: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc), principal: principal}
	h := &wire.Hello{Token: token, Principal: principal}
	if err := wire.WriteFrame(c.w, wire.MsgHello, h.Encode()); err != nil {
		nc.Close()
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(c.r)
	if err != nil {
		nc.Close()
		return nil, err
	}
	switch typ {
	case wire.MsgHelloOK:
		return c, nil
	case wire.MsgCtrlRes:
		res, derr := wire.DecodeCtrlRes(payload)
		nc.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, errors.New(res.Err)
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame %c", typ)
	}
}

// Close says goodbye and closes the socket.
func (c *Conn) Close() error {
	_ = wire.WriteFrame(c.w, wire.MsgClose, nil)
	_ = c.w.Flush()
	return c.c.Close()
}

// Label returns the client's view of the process label.
func (c *Conn) Label() Label { return c.plabel.Clone() }

// Integrity returns the client's view of the process integrity label.
func (c *Conn) Integrity() Label { return c.pilabel.Clone() }

// DropIntegrity lowers the local integrity label (always safe); the
// change reaches the server with the next statement.
func (c *Conn) DropIntegrity(t Tag) {
	c.pilabel = c.pilabel.Remove(t)
	c.dirty = true
}

// Endorse asks the server to verify authority and raise the integrity
// label (round-trips, like Declassify).
func (c *Conn) Endorse(t Tag) error {
	_, err := c.Exec(fmt.Sprintf("SELECT endorse(%d)", uint64(t)))
	return err
}

// Principal returns the acting principal.
func (c *Conn) Principal() uint64 { return c.principal }

// AddSecrecy raises the local process label; the change reaches the
// server with the next statement. (Raising is free client-side; the
// server re-checks the clearance rule inside serializable
// transactions.)
func (c *Conn) AddSecrecy(t Tag) {
	c.plabel = c.plabel.Add(t)
	c.dirty = true
}

// SetPrincipal switches the acting principal (platform authentication
// code only).
func (c *Conn) SetPrincipal(p uint64) {
	c.principal = p
	c.dirty = true
}

// Declassify asks the server to verify authority and lower the label.
// Unlike AddSecrecy this must round-trip: removing a tag without
// authority would violate the flow rules, so we issue the SQL function
// and adopt the server's resulting label.
func (c *Conn) Declassify(t Tag) error {
	_, err := c.Exec(fmt.Sprintf("SELECT declassify(%d)", uint64(t)))
	return err
}

// Exec sends one statement (with lazily-coalesced label sync) and
// returns the result. The connection adopts the server's post-
// statement label, which reflects any addsecrecy()/declassify() the
// statement performed.
func (c *Conn) Exec(sql string, params ...Value) (*Result, error) {
	q := &wire.Query{SQL: sql, Params: params}
	if c.dirty {
		q.SyncLabel = true
		q.Label = c.plabel
		q.ILabel = c.pilabel
		q.Principal = c.principal
	}
	payload, err := q.Encode()
	if err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(c.w, wire.MsgQuery, payload); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	typ, resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgResult {
		return nil, fmt.Errorf("client: unexpected frame %c", typ)
	}
	res, err := wire.DecodeResult(resp)
	if err != nil {
		return nil, err
	}
	c.dirty = false
	c.plabel = res.Label
	c.pilabel = res.ILabel
	if res.Err != "" {
		return nil, errors.New(res.Err)
	}
	return &Result{Cols: res.Cols, Rows: res.Rows, RowLabels: res.RowLabels, Affected: res.Affected}, nil
}

// control round-trips a control message. Pending label/principal
// changes are flushed first (control frames carry no sync fields, and
// authority operations must run under the client's true identity and
// label).
func (c *Conn) control(ctl *wire.Control) (*wire.CtrlRes, error) {
	if c.dirty {
		if _, err := c.Exec("SELECT 1"); err != nil {
			return nil, err
		}
	}
	if err := wire.WriteFrame(c.w, wire.MsgControl, ctl.Encode()); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	typ, resp, err := wire.ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgCtrlRes {
		return nil, fmt.Errorf("client: unexpected frame %c", typ)
	}
	res, err := wire.DecodeCtrlRes(resp)
	if err != nil {
		return nil, err
	}
	if res.Err != "" {
		return nil, errors.New(res.Err)
	}
	return res, nil
}

// CreatePrincipal creates a principal server-side (requires an empty
// label, like every authority-state mutation).
func (c *Conn) CreatePrincipal(name string) (uint64, error) {
	res, err := c.control(&wire.Control{Op: "create_principal", Strs: []string{name}})
	if err != nil {
		return 0, err
	}
	return res.Nums[0], nil
}

// CreateTag creates a named tag owned by the acting principal.
func (c *Conn) CreateTag(name string, compounds ...string) (Tag, error) {
	res, err := c.control(&wire.Control{Op: "create_tag", Strs: append([]string{name}, compounds...)})
	if err != nil {
		return 0, err
	}
	return Tag(res.Nums[0]), nil
}

// LookupTag resolves a tag name server-side.
func (c *Conn) LookupTag(name string) (Tag, error) {
	res, err := c.control(&wire.Control{Op: "lookup_tag", Strs: []string{name}})
	if err != nil {
		return 0, err
	}
	return Tag(res.Nums[0]), nil
}

// Delegate grants authority for t to grantee.
func (c *Conn) Delegate(grantee uint64, t Tag) error {
	_, err := c.control(&wire.Control{Op: "delegate", Nums: []uint64{grantee, uint64(t)}})
	return err
}

// Revoke withdraws a delegation.
func (c *Conn) Revoke(grantee uint64, t Tag) error {
	_, err := c.control(&wire.Control{Op: "revoke", Nums: []uint64{grantee, uint64(t)}})
	return err
}

// HasAuthority asks whether the acting principal can declassify t.
func (c *Conn) HasAuthority(t Tag) (bool, error) {
	res, err := c.control(&wire.Control{Op: "has_authority", Nums: []uint64{uint64(t)}})
	if err != nil {
		return false, err
	}
	return res.Nums[0] == 1, nil
}
