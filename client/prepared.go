// Prepared statements: the client half of the PREPARE/EXECUTE/
// CLOSESTMT frames of API v2. A Stmt pins a statement's parsed AST
// server-side, so executions ship only a handle and parameters —
// no re-parsing, no statement text on the hot path.

package client

import (
	"context"

	"ifdb/internal/wire"
)

// Stmt is a prepared statement on one Conn. Like the Conn it is not
// safe for concurrent use. A Stmt survives AutoReconnect: server-side
// handles die with their connection, so the Stmt transparently
// re-prepares itself on the fresh connection before executing.
type Stmt struct {
	c       *Conn
	sqlText string

	id        uint64
	numParams int
	gen       int // conn generation the handle was prepared under

	// plan is the Router's prepare-time analysis (classification and
	// shard-key derivation via the real SQL parser); nil for plain
	// Conn statements. See shardkey.go.
	plan *stmtPlan

	// cached marks a Stmt owned by the conn's preparedFor cache:
	// Close keeps it alive for the next borrower.
	cached bool

	closed bool
}

// Prepare parses and pins a statement server-side, returning its
// handle. With AutoReconnect, a broken connection is redialed and the
// prepare retried once (preparing is idempotent).
func (c *Conn) Prepare(sqlText string) (*Stmt, error) {
	s := &Stmt{c: c, sqlText: sqlText}
	err := s.prepare()
	if err != nil && c.cfg.AutoReconnect && retryable(err) {
		if rerr := c.redial(); rerr != nil {
			return nil, rerr
		}
		err = s.prepare()
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// prepare round-trips a PREPARE frame and adopts the handle.
func (s *Stmt) prepare() error {
	resp, err := s.c.roundTrip(wire.MsgPrepare, (&wire.Prepare{SQL: s.sqlText}).Encode(), wire.MsgPrepareRes)
	if err != nil {
		return err
	}
	res, err := wire.DecodePrepareRes(resp)
	if err != nil {
		return err
	}
	if res.Err != "" {
		return &serverError{msg: res.Err}
	}
	s.id = res.StmtID
	s.numParams = int(res.NumParams)
	s.gen = s.c.gen
	return nil
}

// ensure re-prepares the statement when the connection was redialed
// since the handle was issued (handles are connection-scoped).
func (s *Stmt) ensure() error {
	if s.closed {
		return &clientError{msg: "client: statement is closed"}
	}
	if s.gen == s.c.gen {
		return nil
	}
	return s.prepare()
}

// SQL returns the statement's text.
func (s *Stmt) SQL() string { return s.sqlText }

// NumParams returns the number of positional parameters the statement
// binds.
func (s *Stmt) NumParams() int { return s.numParams }

// Exec executes the prepared statement, buffering the result.
func (s *Stmt) Exec(params ...Value) (*Result, error) {
	return s.ExecContext(context.Background(), params...)
}

// ExecContext is Exec with deadline/cancel propagation (see
// Conn.ExecContext for the cancellation semantics).
func (s *Stmt) ExecContext(ctx context.Context, params ...Value) (*Result, error) {
	return s.c.execCtx(ctx, s, 0, 0, "", params)
}

// Query executes the prepared statement and streams the result.
func (s *Stmt) Query(params ...Value) (Rows, error) {
	return s.QueryContext(context.Background(), params...)
}

// QueryContext is Query with deadline/cancel propagation. The context
// governs the whole iteration, not just the first chunk.
func (s *Stmt) QueryContext(ctx context.Context, params ...Value) (Rows, error) {
	return s.c.queryCtx(ctx, s, 0, 0, "", params, nil)
}

// execShard runs the prepared statement with the Router's routing
// envelope (read-your-writes token and shard-map version).
func (s *Stmt) execShard(waitLSN, shardVer uint64, params []Value) (*Result, error) {
	return s.c.execCtx(context.Background(), s, waitLSN, shardVer, "", params)
}

// Close drops the server-side handle. Fire-and-forget (no reply
// frame); safe to call twice. Statements owned by the conn's cache
// ignore Close — the next borrower reuses them.
func (s *Stmt) Close() error {
	if s.cached || s.closed {
		return nil
	}
	s.closed = true
	// Only the generation that issued the handle can close it; after
	// a redial there is nothing server-side to drop.
	if s.gen != s.c.gen || s.c.broken || s.c.stream != nil {
		return nil
	}
	if err := wire.WriteFrame(s.c.w, wire.MsgCloseStmt, (&wire.CloseStmt{StmtID: s.id}).Encode()); err != nil {
		return err
	}
	return s.c.w.Flush()
}

// preparedStmtCacheCap bounds the per-conn statement cache the Router
// uses; past it, an arbitrary victim is closed and evicted.
const preparedStmtCacheCap = 128

// preparedFor returns this connection's cached prepared statement for
// sqlText, preparing (and caching) it on first use. The Router calls
// it so a pooled conn prepares each routed statement at most once.
func (c *Conn) preparedFor(sqlText string) (*Stmt, error) {
	if st := c.stmts[sqlText]; st != nil {
		return st, nil
	}
	st, err := c.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	st.cached = true
	if c.stmts == nil {
		c.stmts = make(map[string]*Stmt)
	}
	if len(c.stmts) >= preparedStmtCacheCap {
		for k, victim := range c.stmts {
			victim.cached = false
			_ = victim.Close()
			delete(c.stmts, k)
			break
		}
	}
	c.stmts[sqlText] = st
	return st, nil
}
