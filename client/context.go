// Context plumbing: deadline and cancellation propagation for API v2.
//
// A context's cancellation crosses the wire as an out-of-band CANCEL
// frame on a fresh connection (Postgres-style: the statement's own
// connection is busy carrying the statement), which makes the server
// abort the running statement and its transaction. The canceled
// statement then fails normally on its own connection — the common
// path never severs the socket. Only a server that fails to answer
// within a grace period gets its socket cut, sacrificing the
// connection to honor the deadline.

package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"ifdb/internal/wire"
)

// cancelGrace bounds how long a canceled statement may keep its
// connection waiting for the server's (error) reply before the socket
// is severed.
const cancelGrace = 5 * time.Second

// ExecContext runs one statement with deadline/cancel propagation,
// buffering the result. On cancellation the server-side transaction
// is aborted and the returned error wraps ctx's error (matching
// errors.Is(err, context.Canceled / DeadlineExceeded)).
func (c *Conn) ExecContext(ctx context.Context, sqlText string, params ...Value) (*Result, error) {
	return c.execCtx(ctx, nil, 0, 0, sqlText, params)
}

// Query runs one statement and streams the result.
func (c *Conn) Query(sqlText string, params ...Value) (Rows, error) {
	return c.QueryContext(context.Background(), sqlText, params...)
}

// QueryContext runs one statement and streams the result under ctx:
// the context governs the whole iteration, and its cancellation
// aborts the statement server-side mid-stream.
func (c *Conn) QueryContext(ctx context.Context, sqlText string, params ...Value) (Rows, error) {
	return c.queryCtx(ctx, nil, 0, 0, sqlText, params, nil)
}

// execCtx is the shared buffered-execution path (text or prepared),
// with the AutoReconnect retry of the v1 API.
func (c *Conn) execCtx(ctx context.Context, stmt *Stmt, waitLSN, shardVer uint64, sqlText string, params []Value) (*Result, error) {
	res, err := c.execCtxOnce(ctx, stmt, waitLSN, shardVer, sqlText, params)
	if err == nil || !c.cfg.AutoReconnect || !retryable(err) || ctxDone(ctx) {
		return res, err
	}
	if rerr := c.redial(); rerr != nil {
		return nil, rerr
	}
	return c.execCtxOnce(ctx, stmt, waitLSN, shardVer, sqlText, params)
}

func (c *Conn) execCtxOnce(ctx context.Context, stmt *Stmt, waitLSN, shardVer uint64, sqlText string, params []Value) (*Result, error) {
	rows, err := c.startExecCtx(ctx, stmt, waitLSN, shardVer, sqlText, params, nil)
	if err != nil {
		return nil, err
	}
	res, err := rows.drain()
	return res, ctxErrOr(ctx, err)
}

// queryCtx is the shared streaming-execution path. Only the start is
// retried (with AutoReconnect): once rows flow, a failure surfaces
// through the Rows.
func (c *Conn) queryCtx(ctx context.Context, stmt *Stmt, waitLSN, shardVer uint64, sqlText string, params []Value, onClose func(error)) (Rows, error) {
	rows, err := c.startExecCtx(ctx, stmt, waitLSN, shardVer, sqlText, params, onClose)
	if err != nil && c.cfg.AutoReconnect && retryable(err) && !ctxDone(ctx) {
		if rerr := c.redial(); rerr != nil {
			return nil, rerr
		}
		rows, err = c.startExecCtx(ctx, stmt, waitLSN, shardVer, sqlText, params, onClose)
	}
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// startExecCtx resolves the prepared handle, arms the context
// watcher, and starts the statement. The watcher is owned by the
// returned stream (stopped when it ends); on failure it has already
// been stopped.
func (c *Conn) startExecCtx(ctx context.Context, stmt *Stmt, waitLSN, shardVer uint64, sqlText string, params []Value, onClose func(error)) (*connRows, error) {
	if err := ctxErr(ctx); err != nil {
		if onClose != nil {
			onClose(err)
		}
		return nil, err
	}
	var stmtID uint64
	if stmt != nil {
		if err := stmt.ensure(); err != nil {
			if onClose != nil {
				onClose(err)
			}
			return nil, err
		}
		stmtID, sqlText = stmt.id, ""
	}
	stop := c.watchCancel(ctx)
	rows, err := c.startExec(stmtID, sqlText, waitLSN, shardVer, params, 0, stop, onClose)
	if err != nil {
		return nil, ctxErrOr(ctx, err)
	}
	rows.ctx = ctx
	return rows, nil
}

// watchCancel arms a goroutine that, when ctx ends before stop is
// called, sends the out-of-band CANCEL and — if the server does not
// answer within cancelGrace — severs the statement's socket.
func (c *Conn) watchCancel(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	// Capture everything the goroutine needs: the Conn's fields are
	// single-threaded state the watcher must not touch.
	addr, sid, key := c.cfg.Addr, c.sessID, c.cancelKey
	dialTimeout := c.cfg.DialTimeout
	nc := c.c
	go func() {
		select {
		case <-done:
		case <-ctx.Done():
			sendCancelTo(addr, sid, key, dialTimeout)
			select {
			case <-done:
			case <-time.After(cancelGrace):
				nc.Close()
			}
		}
	}()
	return func() { close(done) }
}

// sendCancelTo opens a fresh connection and fires a CANCEL frame for
// the (session, key) pair — best-effort: a cancel that cannot be
// delivered degrades to the grace-period socket cut.
func sendCancelTo(addr string, sessID, cancelKey uint64, dialTimeout time.Duration) {
	if sessID == 0 {
		return // v1 server: no cancellation support
	}
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return
	}
	defer nc.Close()
	w := bufio.NewWriter(nc)
	frame := (&wire.Cancel{SessionID: sessID, CancelKey: cancelKey}).Encode()
	if err := wire.WriteFrame(w, wire.MsgCancel, frame); err != nil {
		return
	}
	_ = w.Flush()
}

// ctxErr returns ctx's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func ctxDone(ctx context.Context) bool { return ctxErr(ctx) != nil }

// ctxErrOr folds a finished context into a statement failure so
// callers can match errors.Is(err, context.Canceled): the server
// reports its cancel error on the statement's own connection, but the
// caller's contract is the context's. Both causes stay in the chain —
// a server-reported cancel must keep its serverError identity, or the
// routing layers would misread a clean cancellation as a transport
// failure and retire a healthy connection.
func ctxErrOr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	// Idempotent: an error that already carries ctx's cause (the stream
	// wraps terminal errors, then drain's caller folds again) must not
	// be wrapped twice.
	if cerr := ctxErr(ctx); cerr != nil && !errors.Is(err, cerr) {
		return fmt.Errorf("client: %w: %w", err, cerr)
	}
	return err
}
