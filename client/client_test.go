package client_test

import (
	"net"
	"strings"
	"testing"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/wire"
)

// startServer brings up a wire server over a fresh IFDB engine on a
// loopback listener.
func startServer(t *testing.T, token string) (*ifdb.DB, string) {
	t.Helper()
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	srv := wire.NewServer(db.Engine(), token)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return db, ln.Addr().String()
}

func TestEndToEnd(t *testing.T) {
	db, addr := startServer(t, "tok")
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE notes (id BIGINT PRIMARY KEY, body TEXT)`); err != nil {
		t.Fatal(err)
	}

	conn, err := client.Dial(addr, "tok", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Establish a principal and a tag over the wire.
	alice, err := conn.CreatePrincipal("alice")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetPrincipal(alice)
	tg, err := conn.CreateTag("alice_notes")
	if err != nil {
		t.Fatal(err)
	}

	// Contaminate (lazy sync), write, read back with labels.
	conn.AddSecrecy(tg)
	if _, err := conn.Exec(`INSERT INTO notes VALUES (1, 'secret note')`); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Exec(`SELECT body FROM notes WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "secret note" {
		t.Fatalf("rows: %+v", res.Rows)
	}
	if len(res.RowLabels) != 1 || !res.RowLabels[0].Equal(client.Label{tg}) {
		t.Fatalf("labels: %v", res.RowLabels)
	}

	// Server's post-statement label is adopted by the client.
	if !conn.Label().Equal(client.Label{tg}) {
		t.Fatalf("client label: %v", conn.Label())
	}
	if err := conn.Declassify(tg); err != nil {
		t.Fatal(err)
	}
	if !conn.Label().IsEmpty() {
		t.Fatalf("label after declassify: %v", conn.Label())
	}

	// A second connection with no label sees nothing.
	conn2, err := client.Dial(addr, "tok", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	res, err = conn2.Exec(`SELECT * FROM notes`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("unlabeled peer saw the note")
	}

	// Authority checks over the wire.
	ok, err := conn.HasAuthority(tg)
	if err != nil || !ok {
		t.Fatalf("has_authority: %v %v", ok, err)
	}
	ok, err = conn2.HasAuthority(tg)
	if err != nil || ok {
		t.Fatalf("peer has_authority: %v %v", ok, err)
	}

	// Delegation + revocation round trip.
	bob, err := conn2.CreatePrincipal("bob")
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Delegate(bob, tg); err != nil {
		t.Fatal(err)
	}
	conn2.SetPrincipal(bob)
	if ok, _ := conn2.HasAuthority(tg); !ok {
		t.Fatal("delegation did not reach bob")
	}
	if err := conn.Revoke(bob, tg); err != nil {
		t.Fatal(err)
	}
	if ok, _ := conn2.HasAuthority(tg); ok {
		t.Fatal("revocation did not take")
	}

	// Errors surface as errors with the server's message.
	if _, err := conn.Exec(`SELECT * FROM nonexistent`); err == nil || !strings.Contains(err.Error(), "nonexistent") {
		t.Fatalf("server error lost: %v", err)
	}
	if _, err := conn.LookupTag("missing"); err == nil {
		t.Fatal("missing tag lookup succeeded")
	}
}

func TestBadTokenRejected(t *testing.T) {
	_, addr := startServer(t, "right")
	if _, err := client.Dial(addr, "wrong", 0); err == nil {
		t.Fatal("bad token accepted")
	}
	// Correct token connects.
	conn, err := client.Dial(addr, "right", 0)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
}

func TestParamsOverWire(t *testing.T) {
	db, addr := startServer(t, "")
	if _, err := db.AdminSession().Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	conn, err := client.Dial(addr, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec(`INSERT INTO kv VALUES ($1, $2)`, client.Value(ifdb.Int(1)), client.Value(ifdb.Text("one"))); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Exec(`SELECT v FROM kv WHERE k = $1`, client.Value(ifdb.Int(1)))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Text() != "one" {
		t.Fatalf("param round trip: %+v %v", res, err)
	}
	// Transactions over the wire.
	if _, err := conn.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`INSERT INTO kv VALUES (2, 'two')`); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(`ROLLBACK`); err != nil {
		t.Fatal(err)
	}
	res, _ = conn.Exec(`SELECT COUNT(*) FROM kv`)
	if res.Rows[0][0].Int() != 1 {
		t.Fatal("rollback over wire failed")
	}
}
