// Command ifdb-cli is an interactive shell for an IFDB server — the
// psql analog from §7.2, extended with label awareness: the prompt
// shows the process label, and meta-commands manage tags, authority,
// and the label.
//
//	ifdb-cli -addr 127.0.0.1:5433 -token secret
//
// Meta-commands:
//
//	\label                 show the process label
//	\addsecrecy <tag>      raise the label (name or id)
//	\declassify <tag>      lower the label (requires authority)
//	\tag <name>            create a tag owned by the current principal
//	\principal <name>      create a principal and switch to it
//	\status                show the node's replication role, epoch, LSNs
//	\stats                 show the last statement's timing breakdown and trace ID
//	\promote               promote this replica to primary (failover)
//	\shardmap              show the node's current shard map
//	\q                     quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ifdb/client"
	"ifdb/internal/obs"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:5433", "server address")
		token = flag.String("token", "", "platform token")
		prin  = flag.Uint64("principal", 0, "acting principal id (0 = none)")
	)
	flag.Parse()

	conn, err := client.Dial(*addr, *token, *prin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdb-cli:", err)
		os.Exit(1)
	}
	defer conn.Close()

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("ifdb%s> ", conn.Label())
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if quit := metaCommand(conn, line); quit {
				return
			}
			continue
		}
		res, err := conn.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

func metaCommand(conn *client.Conn, line string) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\q":
		return true
	case "\\label":
		fmt.Println(conn.Label())
	case "\\addsecrecy":
		if len(fields) != 2 {
			fmt.Println("usage: \\addsecrecy <tag>")
			return
		}
		t, err := resolveTag(conn, fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		conn.AddSecrecy(t)
	case "\\declassify":
		if len(fields) != 2 {
			fmt.Println("usage: \\declassify <tag>")
			return
		}
		t, err := resolveTag(conn, fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if err := conn.Declassify(t); err != nil {
			fmt.Println("error:", err)
		}
	case "\\tag":
		if len(fields) < 2 {
			fmt.Println("usage: \\tag <name> [compound...]")
			return
		}
		t, err := conn.CreateTag(fields[1], fields[2:]...)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("tag %s = %d\n", fields[1], uint64(t))
	case "\\principal":
		if len(fields) != 2 {
			fmt.Println("usage: \\principal <name>")
			return
		}
		p, err := conn.CreatePrincipal(fields[1])
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		conn.SetPrincipal(p)
		fmt.Printf("now acting as principal %d (%s)\n", p, fields[1])
	case "\\status":
		st, err := conn.Status()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printStatus(st)
	case "\\stats":
		st, err := conn.Stats()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("trace=%s parse=%s plan=%s exec=%s stream=%s\n",
			obs.TraceID(st.TraceID),
			fmtNs(st.ParseNs), fmtNs(st.PlanNs), fmtNs(st.ExecNs), fmtNs(st.StreamNs))
	case "\\promote":
		st, err := conn.PromoteNode()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println("promoted to primary")
		printStatus(st)
	case "\\shardmap":
		m, err := conn.ShardMap()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if m == nil {
			fmt.Println("unsharded")
			return
		}
		fmt.Print(m.Format())
	default:
		fmt.Println("unknown meta-command", fields[0])
	}
	return false
}

// fmtNs renders a nanosecond count with a human-scaled unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

func printStatus(st *client.Status) {
	role := "primary"
	if st.Replica {
		role = "replica"
	}
	fmt.Printf("role=%s epoch=%d wal-end=%d", role, st.Epoch, st.WALEnd)
	if st.Replica {
		fmt.Printf(" applied-lsn=%d", st.AppliedLSN)
	}
	if st.Err != "" {
		fmt.Printf(" stream-error=%q", st.Err)
	}
	fmt.Println()
}

func resolveTag(conn *client.Conn, s string) (client.Tag, error) {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return client.Tag(n), nil
	}
	return conn.LookupTag(s)
}

func printResult(res *client.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("OK (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for i, row := range res.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		line := strings.Join(parts, " | ")
		if res.RowLabels != nil {
			line += "   _label=" + res.RowLabels[i].String()
		}
		fmt.Println(line)
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
