// -exp large-result: the experiment behind the streaming executor.
//
// A keyless SELECT whose result is far bigger than any buffer is
// drained through the wire protocol twice — once against an engine
// running the legacy materializing executor (ifdb.Config.LegacyExec),
// once against the plan-based streaming one. Both sides speak the
// identical v2 EXECUTE/ROWS protocol, so every measured difference is
// the executor:
//
//   - time to first row: the materializing executor scans the whole
//     table before the first chunk leaves the server; the streaming
//     executor emits a chunk as soon as the scan has filled one.
//   - drain latency and throughput: full-result drains per second, the
//     sanity check that streaming does not trade throughput for
//     latency.
//
// The third streaming claim — bounded live heap over a result bigger
// than memory should allow — is a correctness property, not a
// throughput number, and is asserted by the million-row test
// TestStreamBoundedHeap in the client package.

package main

import (
	"fmt"
	"net"
	"sort"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/bench/report"
	"ifdb/internal/sim"
	"ifdb/internal/wire"
)

// largeResultRows: big enough that the first-row gap is unmistakable,
// small enough that a drain fits a short CI -duration.
const largeResultRows = 200_000

func expLargeResult() {
	fmt.Println("== large-result: keyless SELECT drain, streaming vs materializing executor ==")
	fmt.Printf("(%d-row table behind a real socket; both modes use the chunked v2 protocol)\n", largeResultRows)
	exp := report.Experiment{Name: "large-result", Notes: map[string]float64{"rows": largeResultRows}}

	runMode := func(label string, legacy bool) {
		db := ifdb.MustOpen(ifdb.Config{LegacyExec: legacy})
		defer db.Close()
		admin := db.AdminSession()
		check(errOf(admin.Exec(`CREATE TABLE big (k BIGINT PRIMARY KEY, v BIGINT)`)))
		for lo := 0; lo < largeResultRows; lo += 2000 {
			var b []byte
			b = append(b, `INSERT INTO big VALUES `...)
			for k := lo; k < lo+2000; k++ {
				if k > lo {
					b = append(b, ',')
				}
				b = fmt.Appendf(b, "(%d,%d)", k, k*3)
			}
			check(errOf(admin.Exec(string(b))))
		}
		srv := wire.NewServer(db.Engine(), "")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go srv.Serve(ln)
		defer srv.Close()
		conn, err := client.Dial(ln.Addr().String(), "", 0)
		check(err)
		defer conn.Close()

		const query = `SELECT k, v FROM big`
		drain := func() (ttfrUs, drainUs int64) {
			t0 := time.Now()
			rows, err := conn.Query(query)
			check(err)
			n := 0
			for rows.Next() {
				if n == 0 {
					ttfrUs = time.Since(t0).Microseconds()
				}
				n++
			}
			check(rows.Err())
			rows.Close()
			if n != largeResultRows {
				check(fmt.Errorf("drained %d rows, want %d", n, largeResultRows))
			}
			return ttfrUs, time.Since(t0).Microseconds()
		}

		drain() // warm-up: caches, pools, first-run costs
		var ttfrs, drains []int64
		t0 := time.Now()
		deadline := t0.Add(*durFlag)
		for len(drains) == 0 || time.Now().Before(deadline) {
			ttfr, dur := drain()
			ttfrs = append(ttfrs, ttfr)
			drains = append(drains, dur)
		}
		elapsed := time.Since(t0)

		sort.Slice(drains, func(i, j int) bool { return drains[i] < drains[j] })
		sort.Slice(ttfrs, func(i, j int) bool { return ttfrs[i] < ttfrs[j] })
		cs := &sim.CohortStats{Ops: int64(len(drains)), LatenciesUs: drains}
		g := groupFrom(label, cs, elapsed)
		exp.Groups = append(exp.Groups, g)
		printGroup(g)
		ttfrP50 := float64(ttfrs[len(ttfrs)/2])
		rowsPerSec := float64(len(drains)) * largeResultRows / elapsed.Seconds()
		fmt.Printf("  first row after %.1fms   %.0f rows/s\n", ttfrP50/1000, rowsPerSec)
		key := "stream"
		if legacy {
			key = "legacy"
		}
		exp.Notes[key+"_ttfr_p50_us"] = ttfrP50
		exp.Notes[key+"_rows_per_sec"] = rowsPerSec
	}
	runMode("materializing (LegacyExec)", true)
	runMode("streaming executor", false)
	benchReportAdd(exp)
	fmt.Println("(time to first row is the executor's signature: the legacy path")
	fmt.Println(" scans the whole table before chunk one; the planner's volcano")
	fmt.Println(" iterators ship a chunk per scan batch. See ARCHITECTURE.md.)")
	fmt.Println()
}
