// -exp scatter-agg: the distributed-aggregation experiment. A keyless
// GROUP BY aggregate fans out over 1/2/4 shards twice — once with
// partial-aggregate pushdown (each shard ships one pre-aggregated row
// per group) and once with pushdown disabled (every matching row ships
// to the gateway, which aggregates alone) — and the report carries
// throughput, drain latency, bytes-on-wire from the server-side
// ifdb_wire_rows_bytes_total counter, and the Router's fan-out-width
// histogram. The pushdown's claim is concrete: same answer, fewer
// bytes, flatter drain latency as shards (and rows) grow.

package main

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/bench/report"
	"ifdb/internal/obs"
	"ifdb/internal/sim"
)

const (
	scatterRows   = 24000
	scatterGroups = 16
)

// expScatterAgg runs the 1/2/4-shard × pushdown-on/off grid.
func expScatterAgg() {
	fmt.Println("== scatter-agg: partial-aggregate pushdown vs ship-all-rows ==")
	fmt.Printf("(in-process shards on GOMAXPROCS=%d; %d rows, %d groups, keyless GROUP BY)\n",
		runtime.GOMAXPROCS(0), scatterRows, scatterGroups)

	exp := report.Experiment{Name: "scatter-agg", Notes: map[string]float64{}}
	const stmt = `SELECT g, count(*), sum(v), avg(v) FROM kv GROUP BY g`
	for _, nShards := range []int{1, 2, 4} {
		for _, ship := range []bool{false, true} {
			mode := "partial-agg"
			if ship {
				mode = "ship-rows"
			}
			label := fmt.Sprintf("%d shards %s", nShards, mode)
			g, bytes, width := scatterAggCell(nShards, ship, stmt, label)
			exp.Groups = append(exp.Groups, g)
			exp.Notes[fmt.Sprintf("rows_bytes_%dshards_%s", nShards, mode)] = float64(bytes)
			exp.Notes[fmt.Sprintf("fanout_width_p50_%dshards_%s", nShards, mode)] = float64(width)
			printGroup(g)
			perStmt := float64(0)
			if g.Ops > 0 {
				perStmt = float64(bytes) / float64(g.Ops)
			}
			fmt.Printf("  rows-frames bytes on wire: %d (%.0f B/stmt), fan-out width p50=%d\n",
				bytes, perStmt, width)
		}
	}
	benchReportAdd(exp)
	fmt.Println("(each shard aggregates its slice and ships one partial row per group;")
	fmt.Println(" the gateway merges SUM-of-COUNTs and recomposes AVG. ship-rows disables")
	fmt.Println(" the pushdown, so every row crosses the wire and the gateway aggregates")
	fmt.Println(" alone — the bytes-on-wire column is the pushdown's whole argument.)")
	fmt.Println()
}

// scatterAggCell measures one (shards, mode) cell: seed the keyspace,
// drive the keyless aggregate closed-loop for -duration, and report
// the statement group plus the ROWS-bytes delta and the fan-out-width
// histogram median observed during the measured window.
func scatterAggCell(nShards int, disablePush bool, stmt, label string) (report.Group, int64, int64) {
	shards, smap, addrs := startShards(nShards, false)
	defer stopShards(shards)
	router, err := client.OpenRouter(client.RouterConfig{
		Addrs: addrs, ShardMap: smap, PoolSize: *workersFlag,
		DisableAggPushdown: disablePush,
	})
	check(err)
	defer router.Close()
	_, err = router.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, g TEXT, v BIGINT)`)
	check(err)

	// Seed each shard directly (in-process): the measured window then
	// contains only the fan-out reads, so the ROWS-bytes delta is the
	// aggregate traffic and nothing else.
	for k := 0; k < scatterRows; k++ {
		sid := smap.ShardOf(strconv.Itoa(k))
		_, err := shards[sid].db.AdminSession().Exec(
			`INSERT INTO kv VALUES ($1, $2, $3)`,
			ifdb.Int(int64(k)),
			ifdb.Text(fmt.Sprintf("g%02d", k%scatterGroups)),
			ifdb.Int(int64(k%997)))
		check(err)
	}

	// One unmeasured statement warms the split cache, the per-conn
	// prepared handles, and the shard streams' pools.
	res, err := router.Exec(stmt)
	check(err)
	if len(res.Rows) != scatterGroups {
		check(fmt.Errorf("scatter-agg: %d groups, want %d", len(res.Rows), scatterGroups))
	}

	snap0 := obs.Default.Snapshot()
	var (
		mu   sync.Mutex
		lats []int64
		fail int64
	)
	deadline := time.Now().Add(*durFlag)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workersFlag; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []int64
			var myFail int64
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := router.Exec(stmt); err != nil {
					myFail++
					continue
				}
				mine = append(mine, time.Since(t0).Microseconds())
			}
			mu.Lock()
			lats = append(lats, mine...)
			fail += myFail
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	delta := obs.Default.Snapshot().Sub(snap0)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	cs := &sim.CohortStats{Ops: int64(len(lats)) + fail, Failures: fail, LatenciesUs: lats}
	g := groupFrom(label, cs, elapsed)
	bytes := delta.Counters["ifdb_wire_rows_bytes_total"]
	var widthP50 int64
	if h, ok := delta.Hists["ifdb_router_fanout_width"]; ok {
		widthP50 = h.P50
	}
	return g, bytes, widthP50
}
