// Command ifdb-bench regenerates the tables and figures of the IFDB
// paper's evaluation (§8) on this machine, printing paper-style rows.
//
// Usage:
//
//	ifdb-bench -fig 3        # Fig. 3: request mix (spec vs observed)
//	ifdb-bench -fig 4        # Fig. 4: CarTel web throughput
//	ifdb-bench -fig 5        # Fig. 5: per-script idle latency
//	ifdb-bench -fig 6        # Fig. 6: DBT-2 NOTPM vs tags/label
//	ifdb-bench -exp sensor   # §8.2.2: sensor ingest throughput
//	ifdb-bench -exp space    # §8.3: bytes/tuple vs tags
//	ifdb-bench -exp trustedbase  # §6.3: trusted-base accounting
//	ifdb-bench -exp replica-read # read scale-out through the Router
//	ifdb-bench -exp shard-write  # write scale-out across sharded primaries
//	ifdb-bench -exp prepared     # prepared-vs-reparsed statement throughput
//	ifdb-bench -exp prepared -json BENCH_6.json  # + machine-readable record
//	ifdb-bench -all          # everything (EXPERIMENTS.md source)
//
// replica-read goes beyond the paper: it stands up an in-process
// cluster (one durable primary, -replicas read replicas fed by WAL
// shipping, all behind real sockets), then drives a 90/10 read/write
// mix through client.Router — writes to the primary, reads
// load-balanced across replicas with read-your-writes LSN tokens — and
// compares against the same mix aimed at the primary alone, so the
// scale-out from adding replicas is a measured number rather than a
// promise.
//
// shard-write goes further: -shards primaries behind real sockets,
// each owning one slice of the keyspace via a client.Router shard map,
// driven with an insert-only workload routed by hashed key. The
// baseline is the identical workload against a single shard, so the
// write scale-out from adding primaries — the first number the HA pair
// cannot produce — is measured, not promised. Per-tuple IFC labels are
// ordinary row data, so they shard with their rows.
//
// Absolute numbers differ from the paper's 2013 testbed; the shapes —
// who wins, by roughly what factor, where the slope lies — are the
// reproduction targets (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/bench/cartelweb"
	"ifdb/internal/bench/dbt2"
	"ifdb/internal/bench/sensor"
	"ifdb/internal/catalog"
	"ifdb/internal/obs"
	"ifdb/internal/repl"
	"ifdb/internal/types"
	"ifdb/internal/wire"
)

var (
	figFlag      = flag.Int("fig", 0, "figure to regenerate (3, 4, 5, 6)")
	expFlag      = flag.String("exp", "", "experiment: sensor, space, trustedbase, replica-read, shard-write, prepared")
	jsonFlag     = flag.String("json", "", "write machine-readable -exp prepared results to this file (e.g. BENCH_6.json)")
	allFlag      = flag.Bool("all", false, "run everything")
	durFlag      = flag.Duration("duration", 3*time.Second, "measurement duration per cell")
	workersFlag  = flag.Int("workers", 8, "concurrent clients for throughput runs")
	srcFlag      = flag.String("src", ".", "repository root (for trusted-base line counts)")
	tagSweepFlag = flag.String("tags", "0,1,2,4,6,8,10", "tag counts for fig 6")
	replicasFlag = flag.Int("replicas", 2, "read replicas for -exp replica-read")
	shardsFlag   = flag.Int("shards", 2, "shard primaries for -exp shard-write")
)

func main() {
	flag.Parse()
	ran := false
	if *allFlag || *figFlag == 3 {
		fig3()
		ran = true
	}
	if *allFlag || *figFlag == 4 {
		fig4()
		ran = true
	}
	if *allFlag || *figFlag == 5 {
		fig5()
		ran = true
	}
	if *allFlag || *figFlag == 6 {
		fig6()
		ran = true
	}
	if *allFlag || *expFlag == "sensor" {
		expSensor()
		ran = true
	}
	if *allFlag || *expFlag == "space" {
		expSpace()
		ran = true
	}
	if *allFlag || *expFlag == "trustedbase" {
		expTrustedBase()
		ran = true
	}
	if *allFlag || *expFlag == "replica-read" {
		expReplicaRead()
		ran = true
	}
	if *allFlag || *expFlag == "prepared" {
		expPrepared()
		ran = true
	}
	if *allFlag || *expFlag == "shard-write" {
		expShardWrite()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdb-bench:", err)
		os.Exit(1)
	}
}

// fig3 prints the request-mix table (E1).
func fig3() {
	fmt.Println("== Fig. 3: CarTel web benchmark request distribution ==")
	fmt.Printf("%-20s %8s %10s\n", "request", "spec", "observed")
	obs := cartelweb.ObservedMix(200000)
	for _, m := range cartelweb.Mix {
		fmt.Printf("%-20s %8.2f %10.4f\n", m.Script, m.Freq, obs[m.Script])
	}
	fmt.Println()
}

// fig4 prints the web-throughput table (E2). Baseline and IFDB run in
// alternating slices; the ratio is the median of per-round ratios.
func fig4() {
	fmt.Println("== Fig. 4: CarTel website throughput (web interactions/sec) ==")
	type cell struct {
		name   string
		render int
		conc   int
	}
	rows := []cell{
		{"database-bound", 0, *workersFlag},
		{"web-server-bound", 400, 2},
	}
	fmt.Printf("%-18s %14s %8s\n", "workload", "baseline", "ratio")
	for _, r := range rows {
		var benches [2]*cartelweb.Bench
		for i, ifc := range []bool{false, true} {
			cfg := cartelweb.DefaultConfig(ifc)
			cfg.RenderWork = r.render
			b, err := cartelweb.Setup(cfg)
			check(err)
			benches[i] = b
		}
		const rounds = 5
		slice := *durFlag / (2 * rounds)
		var ratios []float64
		bestBase := 0.0
		for round := 0; round < rounds; round++ {
			wBase, err := benches[0].Run(r.conc, slice)
			check(err)
			wIFC, err := benches[1].Run(r.conc, slice)
			check(err)
			ratios = append(ratios, wIFC/wBase)
			if wBase > bestBase {
				bestBase = wBase
			}
		}
		sortFloats(ratios)
		fmt.Printf("%-18s %12.1f/s %7.1f%%\n", r.name, bestBase, 100*ratios[len(ratios)/2])
	}
	fmt.Println()
}

// fig5 prints the per-script latency table (E3). Baseline and IFDB
// latencies are measured in alternating rounds; the reported increase
// per script is the median of per-round ratios, cancelling host drift.
func fig5() {
	fmt.Println("== Fig. 5: CarTel web request latency on an idle system ==")
	const samples = 150
	var benches [2]*cartelweb.Bench
	for i, ifc := range []bool{false, true} {
		b, err := cartelweb.Setup(cartelweb.DefaultConfig(ifc))
		check(err)
		benches[i] = b
	}
	const rounds = 5
	ratios := map[string][]float64{}
	baseMs := map[string]float64{}
	var scriptOrder []string
	for round := 0; round < rounds; round++ {
		stBase, err := benches[0].Latencies(samples)
		check(err)
		stIFC, err := benches[1].Latencies(samples)
		check(err)
		for i := range stBase {
			script := stBase[i].Script
			if round == 0 {
				scriptOrder = append(scriptOrder, script)
			}
			b := stBase[i].Mean.Seconds() * 1000
			f := stIFC[i].Mean.Seconds() * 1000
			ratios[script] = append(ratios[script], f/b)
			if cur, ok := baseMs[script]; !ok || b < cur {
				baseMs[script] = b
			}
		}
	}
	fmt.Printf("%-20s %14s %14s\n", "script", "baseline mean", "IFDB increase")
	var wDelta, wTot float64
	for _, script := range scriptOrder {
		rs := ratios[script]
		sortFloats(rs)
		med := rs[len(rs)/2]
		freq := 1.0 / float64(len(scriptOrder))
		for _, m := range cartelweb.Mix {
			if m.Script == script {
				freq = m.Freq
			}
		}
		wDelta += freq * baseMs[script] * (med - 1)
		wTot += freq * baseMs[script]
		fmt.Printf("%-20s %12.3fms %13.1f%%\n", script, baseMs[script], 100*(med-1))
	}
	fmt.Printf("weighted mean increase: %.1f%% (paper: 24%%)\n\n", 100*wDelta/wTot)
}

// fig6 prints the DBT-2 label sweep (E5). Each IFDB configuration is
// measured against the baseline with chunk-interleaved execution
// (dbt2.CompareInterleaved), so host-speed drift cancels out of the
// reported ratio.
func fig6() {
	fmt.Println("== Fig. 6: DBT-2 throughput (new-order transactions per minute) ==")
	var ks []int
	for _, part := range strings.Split(*tagSweepFlag, ",") {
		var k int
		fmt.Sscanf(strings.TrimSpace(part), "%d", &k)
		ks = append(ks, k)
	}
	for _, disk := range []bool{false, true} {
		regime := "in-memory"
		base := dbt2.DefaultInMemory()
		if disk {
			regime = "on-disk (paged heap, small buffer pool)"
			base = dbt2.DefaultOnDisk()
		}
		fmt.Printf("-- %s --\n", regime)
		chunk := 150
		chunks := 2 * int(durFlag.Seconds())
		if disk {
			chunk = 100
			chunks /= 2
		}
		// The in-memory heaps are pointer-heavy; damping GC churn keeps
		// mark-assist pauses from landing asymmetrically on one side.
		old := debug.SetGCPercent(400)
		defer debug.SetGCPercent(old)
		// Global warm-up: a throwaway comparison levels the process and
		// host state before the first reported cell.
		{
			wb, err := dbt2.Setup(base)
			check(err)
			wc := base
			wc.IFC = true
			wcell, err := dbt2.Setup(wc)
			check(err)
			_, _, err = dbt2.CompareInterleaved(wb, wcell, 2, chunk)
			check(err)
		}
		prevPct := 100.0
		for i, k := range ks {
			// Fresh baseline per cell: both databases must start at the
			// same size, since DBT-2 grows its tables as it runs.
			baseBench, err := dbt2.Setup(base)
			check(err)
			cfg := base
			cfg.IFC = true
			cfg.TagsPerLabel = k
			cell, err := dbt2.Setup(cfg)
			check(err)
			runtime.GC()
			ratio, notpm, err := dbt2.CompareInterleaved(baseBench, cell, chunks, chunk)
			check(err)
			pct := 100 * ratio
			if i == 0 {
				fmt.Printf("%-22s              (baseline = 100%%)\n", "PostgreSQL-baseline")
			}
			fmt.Printf("%-22s %12.0f NOTPM  (%.1f%% of interleaved baseline, %+.1f pts vs prev)\n",
				fmt.Sprintf("IFDB %d tags/label", k), notpm, pct, pct-prevPct)
			prevPct = pct
		}
	}
	fmt.Println()
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// expSensor prints the §8.2.2 comparison (E4).
func expSensor() {
	fmt.Println("== §8.2.2: sensor data processing throughput ==")
	// Batch-interleaved A/B measurement: shared-host interference hits
	// both configurations equally.
	const cars, batches = 8, 60
	baseRate, ifdbRate, err := sensor.CompareInterleaved(cars, batches)
	check(err)
	fmt.Printf("baseline: %8.0f measurements/s   (paper: 2479)\n", baseRate)
	fmt.Printf("IFDB:     %8.0f measurements/s   (paper: 2439, -1.6%%)\n", ifdbRate)
	fmt.Printf("overhead: %.1f%%\n\n", 100*(baseRate-ifdbRate)/baseRate)
}

// expSpace prints the §8.3 space table (E7).
func expSpace() {
	fmt.Println("== §8.3: tuple space overhead per tag ==")
	fmt.Printf("%6s %14s %12s\n", "tags", "bytes/tuple", "delta")
	var prev float64
	for _, k := range []int{0, 1, 2, 5, 10} {
		db := ifdb.MustOpen(ifdb.Config{IFC: true})
		admin := db.AdminSession()
		check(errOf(admin.Exec(`CREATE TABLE t (a BIGINT, b BIGINT, c TEXT)`)))
		owner := db.CreatePrincipal("o")
		s := db.NewSession(owner)
		var tags []ifdb.Tag
		for i := 0; i < k; i++ {
			tg, err := s.CreateTag(fmt.Sprintf("sp%d", i))
			check(err)
			tags = append(tags, tg)
		}
		for _, tg := range tags {
			check(s.AddSecrecy(tg))
		}
		for i := 0; i < 1000; i++ {
			check(errOf(s.Exec(`INSERT INTO t VALUES ($1, $2, 'order-line-ish')`,
				ifdb.Int(int64(i)), ifdb.Int(int64(i*2)))))
		}
		st := db.Engine().Stats()
		bpt := float64(st.TupleBytes) / float64(st.Tuples)
		delta := ""
		if prev > 0 {
			delta = fmt.Sprintf("%+.1f", bpt-prev)
		}
		fmt.Printf("%6d %14.1f %12s\n", k, bpt, delta)
		prev = bpt
	}
	fmt.Println("(paper: 4 bytes per tag; Order_Line at 89 bytes ⇒ +4.5%/tag)")
	fmt.Println()
}

func errOf(_ *ifdb.Result, err error) error { return err }

// expReplicaRead measures read scale-out through the routing client:
// a durable primary plus -replicas WAL-shipped read replicas, all
// behind real sockets, driven with a 90/10 read/write mix. The
// baseline is the identical mix against the primary alone.
func expReplicaRead() {
	fmt.Println("== replica-read: read scale-out through client.Router ==")
	fmt.Printf("(in-process cluster on GOMAXPROCS=%d; replicas only pay off once\n", runtime.GOMAXPROCS(0))
	fmt.Println(" the primary is CPU-bound, so expect overhead-only numbers on few cores)")
	const seedRows = 1000

	// Primary: durable engine, client server, replication listener.
	primDir, err := os.MkdirTemp("", "ifdb-bench-prim")
	check(err)
	defer os.RemoveAll(primDir)
	db, err := ifdb.Open(ifdb.Config{DataDir: primDir, SyncMode: "off"})
	check(err)
	defer db.Close()
	admin := db.AdminSession()
	check(errOf(admin.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`)))
	for i := 0; i < seedRows; i++ {
		check(errOf(admin.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(int64(i)), ifdb.Int(0))))
	}
	primSrv := wire.NewServer(db.Engine(), "")
	primLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go primSrv.Serve(primLn)
	defer primSrv.Close()
	replPrim := repl.NewPrimary(db.Engine(), "")
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go replPrim.Serve(replLn)
	defer replPrim.Close()

	// Replicas: followers over the stream, each with a client server.
	addrs := []string{primLn.Addr().String()}
	for i := 0; i < *replicasFlag; i++ {
		dir, err := os.MkdirTemp("", "ifdb-bench-repl")
		check(err)
		defer os.RemoveAll(dir)
		f, err := repl.Open(repl.Config{Addr: replLn.Addr().String(), DataDir: dir, SyncMode: "off"})
		check(err)
		defer f.Close()
		srv := wire.NewServer(f.Engine(), "")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go srv.Serve(ln)
		defer srv.Close()
		addrs = append(addrs, ln.Addr().String())
	}

	mix := func(addrs []string, stale bool, label string) {
		router, err := client.OpenRouter(client.RouterConfig{Addrs: addrs, AllowStaleReads: stale})
		check(err)
		defer router.Close()
		var reads, writes, failures atomic.Int64
		deadline := time.Now().Add(*durFlag)
		var wg sync.WaitGroup
		for w := 0; w < *workersFlag; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; time.Now().Before(deadline); i++ {
					k := ifdb.Int(int64(rng.Intn(seedRows)))
					if i%10 == 9 {
						if _, err := router.Exec(`UPDATE kv SET v = v + 1 WHERE k = $1`, k); err != nil {
							failures.Add(1)
							continue
						}
						writes.Add(1)
					} else {
						if _, err := router.Exec(`SELECT v FROM kv WHERE k = $1`, k); err != nil {
							failures.Add(1)
							continue
						}
						reads.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		secs := durFlag.Seconds()
		fmt.Printf("%-26s %9.0f reads/s %8.0f writes/s", label, float64(reads.Load())/secs, float64(writes.Load())/secs)
		if n := failures.Load(); n > 0 {
			fmt.Printf("  (%d failures)", n)
		}
		fmt.Println()
	}
	mix(addrs[:1], false, "primary only")
	mix(addrs, false, fmt.Sprintf("router + %d replicas (RYW)", *replicasFlag))
	mix(addrs, true, fmt.Sprintf("router + %d replicas (stale)", *replicasFlag))
	fmt.Println("(RYW = read-your-writes tokens: each read waits out the")
	fmt.Println(" replication lag of the router's last write; stale drops that.)")
	fmt.Println()
}

// expPrepared measures what wire-level prepared statements (API v2)
// buy on a point-read workload against one server, three ways:
//
//   - inline literals: a distinct SQL text per call — the naive app
//     pattern prepared statements exist to kill. Every call pays a
//     full parse (and poisons the parse cache with dead entries).
//   - parameterized text: one text, $1 parameters. The engine's
//     parse cache absorbs the re-parse, but every call still ships
//     the text and pays the cache lookup.
//   - prepared handles: PREPARE once, EXECUTE a handle + parameters.
//     No parser, no cache lookup, minimal bytes on the wire.
//
// The same comparison then runs through a single-node client.Router
// (text vs RouterStmt). Engine parse counts are printed per mode, so
// "skips re-parsing" is a measured number, not a promise.
func expPrepared() {
	fmt.Println("== prepared: prepared-vs-reparsed statement throughput ==")
	const seedRows = 1000
	cfg := ifdb.Config{}
	if *jsonFlag != "" {
		// Durable engine when recording: the JSON snapshot includes WAL
		// fsync counts, which an in-memory engine never produces. The
		// measured workload is read-only, so only the seeding pays.
		dir, err := os.MkdirTemp("", "ifdb-bench-prep")
		check(err)
		defer os.RemoveAll(dir)
		cfg = ifdb.Config{DataDir: dir}
	}
	db := ifdb.MustOpen(cfg)
	defer db.Close()
	admin := db.AdminSession()
	check(errOf(admin.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`)))
	for i := 0; i < seedRows; i++ {
		check(errOf(admin.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(int64(i)), ifdb.Int(int64(i)))))
	}
	srv := wire.NewServer(db.Engine(), "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	var modes []preparedMode
	run := func(label string, worker func(w int) func(rng *rand.Rand) error) {
		parse0 := db.Engine().ParseCount()
		var failures atomic.Int64
		lats := make([][]int64, *workersFlag)
		deadline := time.Now().Add(*durFlag)
		var wg sync.WaitGroup
		for w := 0; w < *workersFlag; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				op := worker(w)
				rng := rand.New(rand.NewSource(int64(w)))
				samples := make([]int64, 0, 1<<15)
				for time.Now().Before(deadline) {
					t0 := time.Now()
					err := op(rng)
					lat := time.Since(t0).Nanoseconds()
					if err != nil {
						failures.Add(1)
						continue
					}
					samples = append(samples, lat)
				}
				lats[w] = samples
			}(w)
		}
		wg.Wait()
		var all []int64
		for _, s := range lats {
			all = append(all, s...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		n := int64(len(all))
		parses := db.Engine().ParseCount() - parse0
		m := preparedMode{
			Label:       label,
			StmtsPerSec: float64(n) / durFlag.Seconds(),
			Ops:         n,
			Failures:    failures.Load(),
			Parses:      int64(parses),
			P50Us:       pctlUs(all, 0.50),
			P99Us:       pctlUs(all, 0.99),
			P999Us:      pctlUs(all, 0.999),
		}
		if n > 0 {
			m.ParsesPerStmt = float64(parses) / float64(n)
		}
		modes = append(modes, m)
		fmt.Printf("%-28s %9.0f stmts/s   %8d parses", label, m.StmtsPerSec, parses)
		if n > 0 {
			fmt.Printf(" (%.3f/stmt)", m.ParsesPerStmt)
		}
		fmt.Printf("   p50=%.0fµs p99=%.0fµs", m.P50Us, m.P99Us)
		if f := m.Failures; f > 0 {
			fmt.Printf("  (%d failures)", f)
		}
		fmt.Println()
	}

	dial := func() *client.Conn {
		c, err := client.Dial(addr, "", 0)
		check(err)
		return c
	}

	fmt.Println("-- single node (one Conn per worker) --")
	run("inline literals (re-parse)", func(w int) func(*rand.Rand) error {
		c := dial()
		return func(rng *rand.Rand) error {
			// A fresh text per call: the worst case the parse cache
			// cannot help with (every web app interpolating values).
			_, err := c.Exec(fmt.Sprintf(`SELECT v FROM kv WHERE k = %d AND %d >= 0`, rng.Intn(seedRows), rng.Int63()))
			return err
		}
	})
	run("parameterized text", func(w int) func(*rand.Rand) error {
		c := dial()
		return func(rng *rand.Rand) error {
			_, err := c.Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(int64(rng.Intn(seedRows))))
			return err
		}
	})
	run("prepared handles", func(w int) func(*rand.Rand) error {
		c := dial()
		st, err := c.Prepare(`SELECT v FROM kv WHERE k = $1`)
		check(err)
		return func(rng *rand.Rand) error {
			_, err := st.Exec(ifdb.Int(int64(rng.Intn(seedRows))))
			return err
		}
	})

	fmt.Println("-- through client.Router (pooled conns, shared) --")
	router, err := client.OpenRouter(client.RouterConfig{Addrs: []string{addr}, PoolSize: *workersFlag})
	check(err)
	defer router.Close()
	run("router: text", func(w int) func(*rand.Rand) error {
		return func(rng *rand.Rand) error {
			_, err := router.Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(int64(rng.Intn(seedRows))))
			return err
		}
	})
	rst, err := router.Prepare(`SELECT v FROM kv WHERE k = $1`)
	check(err)
	defer rst.Close()
	run("router: prepared", func(w int) func(*rand.Rand) error {
		return func(rng *rand.Rand) error {
			_, err := rst.Exec(ifdb.Int(int64(rng.Intn(seedRows))))
			return err
		}
	})
	fmt.Println("(parses = engine-side sql.ParseAll invocations during the run;")
	fmt.Println(" prepared executions ship a statement handle, not text — see BENCH.md)")
	fmt.Println()

	if *jsonFlag != "" {
		writePreparedJSON(addr, seedRows, modes)
	}
}

// preparedMode is one measured configuration of -exp prepared, as
// recorded in the -json output.
type preparedMode struct {
	Label         string  `json:"label"`
	StmtsPerSec   float64 `json:"stmts_per_sec"`
	Ops           int64   `json:"ops"`
	Failures      int64   `json:"failures"`
	Parses        int64   `json:"parses"`
	ParsesPerStmt float64 `json:"parses_per_stmt"`
	P50Us         float64 `json:"p50_us"`
	P99Us         float64 `json:"p99_us"`
	P999Us        float64 `json:"p999_us"`
}

// pctlUs reads the q-quantile out of an ascending nanosecond sample
// set, in microseconds.
func pctlUs(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / 1e3
}

// writePreparedJSON is the -json tail of -exp prepared: it re-runs the
// prepared-handles mode with the metrics registry disabled and enabled
// in alternating rounds (median-of-rounds, like fig4, so host drift
// cancels), snapshots the registry counters the run produced, and
// writes the whole record to the -json path.
func writePreparedJSON(addr string, seedRows int, modes []preparedMode) {
	fmt.Println("-- registry overhead (prepared handles, metrics off vs on) --")
	// The true cost under measurement — one branch on a disabled flag
	// versus a dozen uncontended atomic adds per statement — is far
	// below scheduler noise, so this leans on precision rather than
	// load: a single worker, fixed op counts per round, many finely
	// interleaved rounds with the off/on order alternating (so
	// monotonic host drift cancels), and the median of per-round
	// ratios as the reported number.
	c, err := client.Dial(addr, "", 0)
	check(err)
	defer c.Close()
	st, err := c.Prepare(`SELECT v FROM kv WHERE k = $1`)
	check(err)
	rng := rand.New(rand.NewSource(99))
	timed := func(n int) float64 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if _, err := st.Exec(ifdb.Int(int64(rng.Intn(seedRows)))); err != nil {
				check(err)
			}
		}
		return float64(n) / time.Since(t0).Seconds()
	}
	warmRate := timed(2000) // warm-up doubles as batch-size calibration
	batch := int(warmRate * 0.005)
	if batch < 200 {
		batch = 200
	}
	const pairs = 150
	var ratios []float64
	var offSecs, onSecs float64
	for p := 0; p < pairs; p++ {
		var offR, onR float64
		if p%2 == 0 {
			obs.SetEnabled(false)
			offR = timed(batch)
			obs.SetEnabled(true)
			onR = timed(batch)
		} else {
			obs.SetEnabled(true)
			onR = timed(batch)
			obs.SetEnabled(false)
			offR = timed(batch)
		}
		offSecs += float64(batch) / offR
		onSecs += float64(batch) / onR
		ratios = append(ratios, onR/offR)
	}
	obs.SetEnabled(true)
	sortFloats(ratios)
	medOff := float64(pairs*batch) / offSecs
	medOn := float64(pairs*batch) / onSecs
	regress := 100 * (1 - ratios[pairs/2])
	fmt.Printf("metrics off %9.0f stmts/s   metrics on %9.0f stmts/s   regression %.2f%% (median of %d paired ratios)\n",
		medOff, medOn, regress, pairs)

	// Counter lookups ride the registry's get-or-create registration:
	// these names already exist (the instrumented packages registered
	// them at init), so this returns the live collectors.
	snap := map[string]int64{}
	for _, name := range []string{
		"ifdb_wal_fsync_total",
		"ifdb_wal_appends_total",
		"ifdb_engine_parses_total",
		"ifdb_engine_parse_cache_hits_total",
		"ifdb_txn_commits_total",
	} {
		snap[name] = obs.NewCounter(name, "").Value()
	}

	out := struct {
		Experiment string           `json:"experiment"`
		Timestamp  string           `json:"timestamp"`
		Duration   string           `json:"duration_per_mode"`
		Workers    int              `json:"workers"`
		Modes      []preparedMode   `json:"modes"`
		Registry   map[string]int64 `json:"registry"`
		Overhead   struct {
			Pairs               int     `json:"pairs"`
			DisabledStmtsPerSec float64 `json:"disabled_stmts_per_sec"`
			EnabledStmtsPerSec  float64 `json:"enabled_stmts_per_sec"`
			RegressionPct       float64 `json:"regression_pct"`
		} `json:"registry_overhead"`
	}{
		Experiment: "prepared",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Duration:   durFlag.String(),
		Workers:    *workersFlag,
		Modes:      modes,
		Registry:   snap,
	}
	out.Overhead.Pairs = pairs
	out.Overhead.DisabledStmtsPerSec = medOff
	out.Overhead.EnabledStmtsPerSec = medOn
	out.Overhead.RegressionPct = regress

	data, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile(*jsonFlag, append(data, '\n'), 0o644))
	fmt.Printf("wrote %s\n\n", *jsonFlag)
}

// expShardWrite measures write scale-out across sharded primaries:
// -shards engines behind real sockets, each pinned to its shard
// (ownership guard installed), with an insert-only workload routed by
// hashed key through a shard-mapped client.Router. The baseline is
// the same workload against one shard.
//
// In-process, every shard shares this machine's cores, so the
// aggregate write throughput scales with shards only until
// GOMAXPROCS saturates — on a one-core box expect the curve to be
// nearly flat, on N cores expect it to climb toward xN. (Deployed,
// each shard is its own machine and the in-process cap disappears;
// what this experiment demonstrates end-to-end is that the write path
// — routing, ownership, version fencing — partitions, which the
// per-shard row counts printed at the end make visible.)
func expShardWrite() {
	fmt.Println("== shard-write: write scale-out across sharded primaries ==")
	fmt.Printf("(in-process shards on GOMAXPROCS=%d: aggregate scaling is capped by cores)\n", runtime.GOMAXPROCS(0))

	run := func(nShards int, report bool) float64 {
		type shard struct {
			db  *ifdb.DB
			srv *wire.Server
			ln  net.Listener
		}
		shards := make([]shard, nShards)
		var addrs []string
		for i := range shards {
			db := ifdb.MustOpen(ifdb.Config{})
			srv := wire.NewServer(db.Engine(), "")
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			check(err)
			shards[i] = shard{db, srv, ln}
			addrs = append(addrs, ln.Addr().String())
		}
		smap := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
		for i, a := range addrs {
			smap.Shards = append(smap.Shards, wire.Shard{ID: uint32(i), Primary: a})
		}
		// Hooks before Serve: handlers must not race hook installation.
		for i := range shards {
			sid := uint32(i)
			shards[i].srv.ShardMap = func() *wire.ShardMap { return smap }
			eng := shards[i].db.Engine()
			eng.SetShardGuard(func(t *catalog.Table, row []types.Value) error {
				if col := smap.KeyColumn(t.Name); col != "" && len(row) > 0 {
					if own := smap.ShardOf(row[0].String()); own != sid {
						return fmt.Errorf("misrouted key %s: owned by shard %d, landed on %d", row[0], own, sid)
					}
				}
				return nil
			})
			go shards[i].srv.Serve(shards[i].ln)
		}
		defer func() {
			for i := range shards {
				shards[i].srv.Close()
				shards[i].db.Close()
			}
		}()

		// PoolSize = workers: every worker keeps a pooled connection per
		// shard, so the measurement is the write path, not dial churn.
		router, err := client.OpenRouter(client.RouterConfig{Addrs: addrs, ShardMap: smap, PoolSize: *workersFlag})
		check(err)
		defer router.Close()
		_, err = router.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`) // DDL fans out
		check(err)

		var writes, failures atomic.Int64
		deadline := time.Now().Add(*durFlag)
		var wg sync.WaitGroup
		for w := 0; w < *workersFlag; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; time.Now().Before(deadline); i++ {
					k := ifdb.Int(int64(w)*1_000_000_000 + int64(i))
					if _, err := router.Exec(`INSERT INTO kv VALUES ($1, $2)`, k, ifdb.Int(int64(i))); err != nil {
						failures.Add(1)
						continue
					}
					writes.Add(1)
				}
			}(w)
		}
		wg.Wait()
		rate := float64(writes.Load()) / durFlag.Seconds()
		if n := failures.Load(); n > 0 {
			fmt.Printf("  (%d failures at %d shards)\n", n, nShards)
		}
		if report {
			// The tangible half of the demonstration: the keyspace
			// really partitioned (every row passed its shard's
			// ownership guard on the way in).
			for i := range shards {
				res, err := shards[i].db.AdminSession().Exec(`SELECT COUNT(*) FROM kv`)
				check(err)
				fmt.Printf("  shard %d holds %s rows\n", i, res.Rows[0][0])
			}
		}
		return rate
	}

	base := run(1, false)
	fmt.Printf("%-14s %10.0f writes/s\n", "1 shard", base)
	scaled := run(*shardsFlag, true)
	fmt.Printf("%-14s %10.0f writes/s   (x%.2f aggregate)\n", fmt.Sprintf("%d shards", *shardsFlag), scaled, scaled/base)
	fmt.Println("(insert-only workload routed by hashed key; each shard is its own")
	fmt.Println(" epoch-fenced replication group, so adding shard primaries scales the")
	fmt.Println(" write path the way adding replicas scales reads — per machine, once")
	fmt.Println(" shards stop sharing cores.)")
	fmt.Println()
}

// expTrustedBase counts authority-bearing code in the two app ports —
// the §6.3 accounting (380/10k LoC in CarTel, 760/29k in HotCRP).
func expTrustedBase() {
	fmt.Println("== §6.3: trusted-base accounting ==")
	for _, app := range []string{"cartel", "hotcrp"} {
		dir := filepath.Join(*srcFlag, "apps", app)
		trusted, total := 0, 0
		entries, err := os.ReadDir(dir)
		check(err)
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			check(err)
			n := 0
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(line) != "" {
					n++
				}
			}
			total += n
			if e.Name() == "trusted.go" {
				trusted += n
			}
		}
		fmt.Printf("%-8s trusted %4d / %5d LoC (%.1f%%)\n", app, trusted, total,
			100*float64(trusted)/float64(total))
	}
	fmt.Println(`(paper: CarTel 380/10000 LoC, HotCRP 760/29000. The paper's
denominators include the full web applications — presentation, session
management, thousands of lines of untrusted display code — while these
ports implement only the data paths, so the *ratio* is not comparable.
The comparable quantity is the absolute size of the authority-bearing
code: a few hundred lines per application in both the paper and here,
small enough to audit.)`)
	fmt.Println()
}
