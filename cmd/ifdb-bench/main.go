// Command ifdb-bench regenerates the tables and figures of the IFDB
// paper's evaluation (§8) on this machine, printing paper-style rows,
// and runs the deterministic sim-backed experiments that track this
// repo's own perf trajectory across PRs.
//
// Usage:
//
//	ifdb-bench -fig 3        # Fig. 3: request mix (spec vs observed)
//	ifdb-bench -fig 4        # Fig. 4: CarTel web throughput
//	ifdb-bench -fig 5        # Fig. 5: per-script idle latency
//	ifdb-bench -fig 6        # Fig. 6: DBT-2 NOTPM vs tags/label
//	ifdb-bench -exp sensor   # §8.2.2: sensor ingest throughput
//	ifdb-bench -exp space    # §8.3: bytes/tuple vs tags
//	ifdb-bench -exp trustedbase  # §6.3: trusted-base accounting
//	ifdb-bench -exp replica-read # read scale-out through the Router
//	ifdb-bench -exp shard-write  # write scale-out across sharded primaries
//	ifdb-bench -exp prepared     # prepared-vs-reparsed statement throughput
//	ifdb-bench -exp mixed-tenant # labeled tenant cohorts on one sharded cluster
//	ifdb-bench -exp large-result # streaming vs materializing executor drain
//	ifdb-bench -exp scatter-agg  # partial-aggregate pushdown vs ship-all-rows
//	ifdb-bench -all          # everything (EXPERIMENTS.md source)
//
// The four sim-backed experiments (prepared, replica-read,
// shard-write, mixed-tenant) consume deterministic schedules from
// internal/sim: -seed pins every random choice, -arrival/-rate pick
// the arrival process (closed loop, open-loop Poisson, bursty), and
// -record/-replay round-trip the schedules through JSONL traces so
// the exact operation sequence of one run replays byte-identically
// against any topology. They compose with the report machinery:
//
//	ifdb-bench -exp prepared,replica-read,shard-write,mixed-tenant \
//	    -json BENCH_7.json -overhead   # schema-versioned perf report
//	ifdb-bench -seed 7 -record traces -exp prepared  # record the schedule
//	ifdb-bench -replay traces -exp prepared          # replay it exactly
//	ifdb-bench -diff BENCH_6.json BENCH_7.json       # perf-trajectory diff
//
// replica-read goes beyond the paper: it stands up an in-process
// cluster (one durable primary, -replicas read replicas fed by WAL
// shipping, all behind real sockets), then drives a 90/10 read/write
// schedule through client.Router — writes to the primary, reads
// load-balanced across replicas with read-your-writes LSN tokens — and
// compares against the same schedule aimed at the primary alone, so
// the scale-out from adding replicas is a measured number rather than
// a promise.
//
// shard-write goes further: -shards primaries behind real sockets,
// each owning one slice of the keyspace via a client.Router shard map,
// driven with an insert-only schedule routed by hashed key. The
// baseline is the identical schedule against a single shard, so the
// write scale-out from adding primaries — the first number the HA pair
// cannot produce — is measured, not promised. Per-tuple IFC labels are
// ordinary row data, so they shard with their rows.
//
// mixed-tenant is the DIFC-under-load experiment: -tenants labeled
// cohorts with distinct statement mixes share one sharded cluster,
// each behind a Router whose pooled connections carry the cohort's
// secrecy tag, so writes are stamped per-tenant and Query by Label
// confines reads while the report tracks per-cohort throughput and
// tail latency.
//
// Absolute numbers differ from the paper's 2013 testbed; the shapes —
// who wins, by roughly what factor, where the slope lies — are the
// reproduction targets (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"ifdb"
	"ifdb/internal/bench/cartelweb"
	"ifdb/internal/bench/dbt2"
	"ifdb/internal/bench/sensor"
)

var (
	figFlag      = flag.Int("fig", 0, "figure to regenerate (3, 4, 5, 6)")
	expFlag      = flag.String("exp", "", "comma-separated experiments: sensor, space, trustedbase, replica-read, shard-write, prepared, mixed-tenant, large-result, scatter-agg")
	jsonFlag     = flag.String("json", "", "write a schema-versioned perf report covering the sim experiments to this file (e.g. BENCH_7.json)")
	allFlag      = flag.Bool("all", false, "run everything")
	durFlag      = flag.Duration("duration", 3*time.Second, "measurement duration per cell")
	workersFlag  = flag.Int("workers", 8, "concurrent clients for throughput runs")
	srcFlag      = flag.String("src", ".", "repository root (for trusted-base line counts)")
	tagSweepFlag = flag.String("tags", "0,1,2,4,6,8,10", "tag counts for fig 6")
	replicasFlag = flag.Int("replicas", 2, "read replicas for -exp replica-read")
	shardsFlag   = flag.Int("shards", 2, "shard primaries for -exp shard-write / mixed-tenant")

	seedFlag      = flag.Int64("seed", 42, "sim workload seed: same seed, same schedule")
	arrivalFlag   = flag.String("arrival", "closed", "sim arrival process: closed, poisson, bursty")
	rateFlag      = flag.Float64("rate", 2000, "open-loop arrival rate in ops/sec (poisson, bursty)")
	tenantsFlag   = flag.Int("tenants", 3, "tenant cohorts for -exp mixed-tenant")
	recordFlag    = flag.String("record", "", "record each sim experiment's schedule to <dir>/<exp>.trace")
	replayFlag    = flag.String("replay", "", "replay sim schedules from <dir>/<exp>.trace instead of generating")
	diffFlag      = flag.Bool("diff", false, "diff two perf reports: ifdb-bench -diff [-diff-threshold pct] old.json new.json")
	diffThreshold = flag.Float64("diff-threshold", 10, "regression threshold in percent for -diff")
	overheadFlag  = flag.Bool("overhead", false, "measure metrics-registry on/off overhead during -exp prepared")
)

// simExperiments are the schedule-driven experiments (the ones -seed,
// -arrival, -record/-replay, and -json apply to).
var simExperiments = map[string]bool{
	"prepared": true, "replica-read": true, "shard-write": true, "mixed-tenant": true,
}

func main() {
	flag.Parse()
	if *diffFlag {
		runDiff(flag.Args())
		return
	}
	exps := map[string]bool{}
	for _, name := range strings.Split(*expFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		switch name {
		case "sensor", "space", "trustedbase", "large-result", "scatter-agg":
		default:
			if !simExperiments[name] {
				fmt.Fprintf(os.Stderr, "ifdb-bench: unknown experiment %q\n", name)
				os.Exit(2)
			}
		}
		exps[name] = true
	}
	want := func(name string) bool { return *allFlag || exps[name] }

	benchReportInit()
	ran := false
	if *allFlag || *figFlag == 3 {
		fig3()
		ran = true
	}
	if *allFlag || *figFlag == 4 {
		fig4()
		ran = true
	}
	if *allFlag || *figFlag == 5 {
		fig5()
		ran = true
	}
	if *allFlag || *figFlag == 6 {
		fig6()
		ran = true
	}
	if want("sensor") {
		expSensor()
		ran = true
	}
	if want("space") {
		expSpace()
		ran = true
	}
	if want("trustedbase") {
		expTrustedBase()
		ran = true
	}
	if want("replica-read") {
		expReplicaRead()
		ran = true
	}
	if want("prepared") {
		expPrepared()
		ran = true
	}
	if want("shard-write") {
		expShardWrite()
		ran = true
	}
	if want("mixed-tenant") {
		expMixedTenant()
		ran = true
	}
	if want("large-result") {
		expLargeResult()
		ran = true
	}
	if want("scatter-agg") {
		expScatterAgg()
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	benchReportFinish()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdb-bench:", err)
		os.Exit(1)
	}
}

// fig3 prints the request-mix table (E1).
func fig3() {
	fmt.Println("== Fig. 3: CarTel web benchmark request distribution ==")
	fmt.Printf("%-20s %8s %10s\n", "request", "spec", "observed")
	obs := cartelweb.ObservedMix(200000)
	for _, m := range cartelweb.Mix {
		fmt.Printf("%-20s %8.2f %10.4f\n", m.Script, m.Freq, obs[m.Script])
	}
	fmt.Println()
}

// fig4 prints the web-throughput table (E2). Baseline and IFDB run in
// alternating slices; the ratio is the median of per-round ratios.
func fig4() {
	fmt.Println("== Fig. 4: CarTel website throughput (web interactions/sec) ==")
	type cell struct {
		name   string
		render int
		conc   int
	}
	rows := []cell{
		{"database-bound", 0, *workersFlag},
		{"web-server-bound", 400, 2},
	}
	fmt.Printf("%-18s %14s %8s\n", "workload", "baseline", "ratio")
	for _, r := range rows {
		var benches [2]*cartelweb.Bench
		for i, ifc := range []bool{false, true} {
			cfg := cartelweb.DefaultConfig(ifc)
			cfg.RenderWork = r.render
			b, err := cartelweb.Setup(cfg)
			check(err)
			benches[i] = b
		}
		const rounds = 5
		slice := *durFlag / (2 * rounds)
		var ratios []float64
		bestBase := 0.0
		for round := 0; round < rounds; round++ {
			wBase, err := benches[0].Run(r.conc, slice)
			check(err)
			wIFC, err := benches[1].Run(r.conc, slice)
			check(err)
			ratios = append(ratios, wIFC/wBase)
			if wBase > bestBase {
				bestBase = wBase
			}
		}
		sortFloats(ratios)
		fmt.Printf("%-18s %12.1f/s %7.1f%%\n", r.name, bestBase, 100*ratios[len(ratios)/2])
	}
	fmt.Println()
}

// fig5 prints the per-script latency table (E3). Baseline and IFDB
// latencies are measured in alternating rounds; the reported increase
// per script is the median of per-round ratios, cancelling host drift.
func fig5() {
	fmt.Println("== Fig. 5: CarTel web request latency on an idle system ==")
	const samples = 150
	var benches [2]*cartelweb.Bench
	for i, ifc := range []bool{false, true} {
		b, err := cartelweb.Setup(cartelweb.DefaultConfig(ifc))
		check(err)
		benches[i] = b
	}
	const rounds = 5
	ratios := map[string][]float64{}
	baseMs := map[string]float64{}
	var scriptOrder []string
	for round := 0; round < rounds; round++ {
		stBase, err := benches[0].Latencies(samples)
		check(err)
		stIFC, err := benches[1].Latencies(samples)
		check(err)
		for i := range stBase {
			script := stBase[i].Script
			if round == 0 {
				scriptOrder = append(scriptOrder, script)
			}
			b := stBase[i].Mean.Seconds() * 1000
			f := stIFC[i].Mean.Seconds() * 1000
			ratios[script] = append(ratios[script], f/b)
			if cur, ok := baseMs[script]; !ok || b < cur {
				baseMs[script] = b
			}
		}
	}
	fmt.Printf("%-20s %14s %14s\n", "script", "baseline mean", "IFDB increase")
	var wDelta, wTot float64
	for _, script := range scriptOrder {
		rs := ratios[script]
		sortFloats(rs)
		med := rs[len(rs)/2]
		freq := 1.0 / float64(len(scriptOrder))
		for _, m := range cartelweb.Mix {
			if m.Script == script {
				freq = m.Freq
			}
		}
		wDelta += freq * baseMs[script] * (med - 1)
		wTot += freq * baseMs[script]
		fmt.Printf("%-20s %12.3fms %13.1f%%\n", script, baseMs[script], 100*(med-1))
	}
	fmt.Printf("weighted mean increase: %.1f%% (paper: 24%%)\n\n", 100*wDelta/wTot)
}

// fig6 prints the DBT-2 label sweep (E5). Each IFDB configuration is
// measured against the baseline with chunk-interleaved execution
// (dbt2.CompareInterleaved), so host-speed drift cancels out of the
// reported ratio.
func fig6() {
	fmt.Println("== Fig. 6: DBT-2 throughput (new-order transactions per minute) ==")
	var ks []int
	for _, part := range strings.Split(*tagSweepFlag, ",") {
		var k int
		fmt.Sscanf(strings.TrimSpace(part), "%d", &k)
		ks = append(ks, k)
	}
	for _, disk := range []bool{false, true} {
		regime := "in-memory"
		base := dbt2.DefaultInMemory()
		if disk {
			regime = "on-disk (paged heap, small buffer pool)"
			base = dbt2.DefaultOnDisk()
		}
		fmt.Printf("-- %s --\n", regime)
		chunk := 150
		chunks := 2 * int(durFlag.Seconds())
		if disk {
			chunk = 100
			chunks /= 2
		}
		// The in-memory heaps are pointer-heavy; damping GC churn keeps
		// mark-assist pauses from landing asymmetrically on one side.
		old := debug.SetGCPercent(400)
		defer debug.SetGCPercent(old)
		// Global warm-up: a throwaway comparison levels the process and
		// host state before the first reported cell.
		{
			wb, err := dbt2.Setup(base)
			check(err)
			wc := base
			wc.IFC = true
			wcell, err := dbt2.Setup(wc)
			check(err)
			_, _, err = dbt2.CompareInterleaved(wb, wcell, 2, chunk)
			check(err)
		}
		prevPct := 100.0
		for i, k := range ks {
			// Fresh baseline per cell: both databases must start at the
			// same size, since DBT-2 grows its tables as it runs.
			baseBench, err := dbt2.Setup(base)
			check(err)
			cfg := base
			cfg.IFC = true
			cfg.TagsPerLabel = k
			cell, err := dbt2.Setup(cfg)
			check(err)
			runtime.GC()
			ratio, notpm, err := dbt2.CompareInterleaved(baseBench, cell, chunks, chunk)
			check(err)
			pct := 100 * ratio
			if i == 0 {
				fmt.Printf("%-22s              (baseline = 100%%)\n", "PostgreSQL-baseline")
			}
			fmt.Printf("%-22s %12.0f NOTPM  (%.1f%% of interleaved baseline, %+.1f pts vs prev)\n",
				fmt.Sprintf("IFDB %d tags/label", k), notpm, pct, pct-prevPct)
			prevPct = pct
		}
	}
	fmt.Println()
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// expSensor prints the §8.2.2 comparison (E4).
func expSensor() {
	fmt.Println("== §8.2.2: sensor data processing throughput ==")
	// Batch-interleaved A/B measurement: shared-host interference hits
	// both configurations equally.
	const cars, batches = 8, 60
	baseRate, ifdbRate, err := sensor.CompareInterleaved(cars, batches)
	check(err)
	fmt.Printf("baseline: %8.0f measurements/s   (paper: 2479)\n", baseRate)
	fmt.Printf("IFDB:     %8.0f measurements/s   (paper: 2439, -1.6%%)\n", ifdbRate)
	fmt.Printf("overhead: %.1f%%\n\n", 100*(baseRate-ifdbRate)/baseRate)
}

// expSpace prints the §8.3 space table (E7).
func expSpace() {
	fmt.Println("== §8.3: tuple space overhead per tag ==")
	fmt.Printf("%6s %14s %12s\n", "tags", "bytes/tuple", "delta")
	var prev float64
	for _, k := range []int{0, 1, 2, 5, 10} {
		db := ifdb.MustOpen(ifdb.Config{IFC: true})
		admin := db.AdminSession()
		check(errOf(admin.Exec(`CREATE TABLE t (a BIGINT, b BIGINT, c TEXT)`)))
		owner := db.CreatePrincipal("o")
		s := db.NewSession(owner)
		var tags []ifdb.Tag
		for i := 0; i < k; i++ {
			tg, err := s.CreateTag(fmt.Sprintf("sp%d", i))
			check(err)
			tags = append(tags, tg)
		}
		for _, tg := range tags {
			check(s.AddSecrecy(tg))
		}
		for i := 0; i < 1000; i++ {
			check(errOf(s.Exec(`INSERT INTO t VALUES ($1, $2, 'order-line-ish')`,
				ifdb.Int(int64(i)), ifdb.Int(int64(i*2)))))
		}
		st := db.Engine().Stats()
		bpt := float64(st.TupleBytes) / float64(st.Tuples)
		delta := ""
		if prev > 0 {
			delta = fmt.Sprintf("%+.1f", bpt-prev)
		}
		fmt.Printf("%6d %14.1f %12s\n", k, bpt, delta)
		prev = bpt
	}
	fmt.Println("(paper: 4 bytes per tag; Order_Line at 89 bytes ⇒ +4.5%/tag)")
	fmt.Println()
}

func errOf(_ *ifdb.Result, err error) error { return err }

// expTrustedBase counts authority-bearing code in the two app ports —
// the §6.3 accounting (380/10k LoC in CarTel, 760/29k in HotCRP).
func expTrustedBase() {
	fmt.Println("== §6.3: trusted-base accounting ==")
	for _, app := range []string{"cartel", "hotcrp"} {
		dir := filepath.Join(*srcFlag, "apps", app)
		trusted, total := 0, 0
		entries, err := os.ReadDir(dir)
		check(err)
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			check(err)
			n := 0
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(line) != "" {
					n++
				}
			}
			total += n
			if e.Name() == "trusted.go" {
				trusted += n
			}
		}
		fmt.Printf("%-8s trusted %4d / %5d LoC (%.1f%%)\n", app, trusted, total,
			100*float64(trusted)/float64(total))
	}
	fmt.Println(`(paper: CarTel 380/10000 LoC, HotCRP 760/29000. The paper's
denominators include the full web applications — presentation, session
management, thousands of lines of untrusted display code — while these
ports implement only the data paths, so the *ratio* is not comparable.
The comparable quantity is the absolute size of the authority-bearing
code: a few hundred lines per application in both the paper and here,
small enough to audit.)`)
	fmt.Println()
}
