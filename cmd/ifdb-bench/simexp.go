// Sim-backed experiments. prepared, replica-read, shard-write, and
// mixed-tenant all consume deterministic schedules from internal/sim:
// two runs under the same -seed execute the same operations in the
// same order, which is what lets a perf delta between two reports be
// read as a code change rather than dice. -record/-replay round-trip
// the schedules through JSONL traces (one file per experiment), -json
// accumulates every sim experiment into one schema-versioned
// report.Report, and -diff compares two such reports (the legacy
// BENCH_6.json shape included) metric by metric.

package main

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/bench/report"
	"ifdb/internal/catalog"
	"ifdb/internal/obs"
	"ifdb/internal/repl"
	"ifdb/internal/sim"
	"ifdb/internal/types"
	"ifdb/internal/wire"
)

// ---------------------------------------------------------------------------
// Report accumulation (-json)

var (
	benchRep   *report.Report
	benchSnap0 obs.Snapshot
)

// benchReportInit arms report accumulation: the registry snapshot
// taken here makes the final report's Registry section a delta scoped
// to this run, not process-lifetime totals.
func benchReportInit() {
	if *jsonFlag == "" {
		return
	}
	benchSnap0 = obs.Default.Snapshot()
	benchRep = &report.Report{
		Schema:    report.Schema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Duration:  durFlag.String(),
		Workers:   *workersFlag,
		Seed:      *seedFlag,
	}
}

func benchReportAdd(e report.Experiment) {
	if benchRep != nil {
		benchRep.Experiments = append(benchRep.Experiments, e)
	}
}

func benchReportFinish() {
	if benchRep == nil {
		return
	}
	if len(benchRep.Experiments) == 0 {
		fmt.Fprintln(os.Stderr, "ifdb-bench: -json set but no sim experiment ran; nothing to write")
		return
	}
	delta := obs.Default.Snapshot().Sub(benchSnap0)
	benchRep.Registry = &delta
	check(benchRep.Save(*jsonFlag))
	fmt.Printf("wrote %s\n\n", *jsonFlag)
}

// ---------------------------------------------------------------------------
// Schedule plumbing (-seed/-arrival/-rate/-record/-replay)

// simWorkload builds the flag-derived workload shared by the sim
// experiments. Closed-loop schedules are a fixed lap the runner cycles
// for -duration; open-loop schedules span -duration at -rate.
func simWorkload(table string, keys int, cohorts []sim.Cohort) sim.Workload {
	w := sim.Workload{
		Seed:    *seedFlag,
		Arrival: *arrivalFlag,
		Workers: *workersFlag,
		Table:   table,
		Keys:    keys,
		Cohorts: cohorts,
	}
	if w.Arrival == sim.ArrivalClosed {
		w.Ops = 4096
	} else {
		w.Rate = *rateFlag
		w.Duration = *durFlag
	}
	return w
}

func tracePath(dir, exp string) string { return filepath.Join(dir, exp+".trace") }

// scheduleFor resolves one experiment's schedule: replayed from a
// recorded trace when -replay is set, generated from the workload (and
// optionally recorded) otherwise. A replayed schedule carries its own
// workload from the trace header — seed, arrival, cohorts and all —
// so it runs identically no matter what the current flags say.
func scheduleFor(name string, w sim.Workload) *sim.Schedule {
	if *replayFlag != "" {
		p := tracePath(*replayFlag, name)
		s, err := sim.ReadTraceFile(p)
		check(err)
		fmt.Printf("(replaying %s)\n", p)
		return s
	}
	s, err := sim.Generate(w)
	check(err)
	if *recordFlag != "" {
		check(os.MkdirAll(*recordFlag, 0o755))
		p := tracePath(*recordFlag, name)
		check(sim.WriteTraceFile(p, s))
		fmt.Printf("(recorded %s: %d ops)\n", p, len(s.Ops))
	}
	return s
}

// simRunOpts: a closed-loop lap cycles for the wall-clock budget; an
// open-loop schedule is its own timeline and plays exactly once.
func simRunOpts(s *sim.Schedule) sim.Options {
	if s.W.Arrival == sim.ArrivalClosed {
		return sim.Options{Duration: *durFlag, Loop: true}
	}
	return sim.Options{}
}

func describeSched(s *sim.Schedule) string {
	if s.W.Arrival == sim.ArrivalClosed {
		return fmt.Sprintf("closed loop: %d-op lap, %d workers, seed %d, %v budget",
			len(s.Ops), s.W.Workers, s.W.Seed, *durFlag)
	}
	return fmt.Sprintf("%s arrivals: %.0f ops/s over %v (%d ops), %d workers, seed %d",
		s.W.Arrival, s.W.Rate, s.W.Duration, len(s.Ops), s.W.Workers, s.W.Seed)
}

// ---------------------------------------------------------------------------
// Stats → report groups

// mergeCohorts flattens a run's per-cohort stats into one aggregate
// (for experiments whose comparison unit is the mode, not the cohort).
func mergeCohorts(st *sim.Stats) *sim.CohortStats {
	out := &sim.CohortStats{}
	for _, cs := range st.Cohorts {
		out.Ops += cs.Ops
		out.Failures += cs.Failures
		out.LatenciesUs = append(out.LatenciesUs, cs.LatenciesUs...)
	}
	sort.Slice(out.LatenciesUs, func(i, j int) bool { return out.LatenciesUs[i] < out.LatenciesUs[j] })
	return out
}

func groupFrom(label string, cs *sim.CohortStats, elapsed time.Duration) report.Group {
	ok := int64(len(cs.LatenciesUs))
	g := report.Group{
		Label:    label,
		Ops:      ok,
		Failures: cs.Failures,
		P50Us:    float64(cs.Percentile(0.50)),
		P99Us:    float64(cs.Percentile(0.99)),
		P999Us:   float64(cs.Percentile(0.999)),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		g.StmtsPerSec = float64(ok) / secs
	}
	return g
}

func printGroup(g report.Group) {
	fmt.Printf("%-28s %9.0f stmts/s", g.Label, g.StmtsPerSec)
	if g.Parses > 0 || g.ParsesPerStmt > 0 {
		fmt.Printf("   %8d parses (%.3f/stmt)", g.Parses, g.ParsesPerStmt)
	}
	fmt.Printf("   p50=%.0fµs p99=%.0fµs", g.P50Us, g.P99Us)
	if g.Failures > 0 {
		fmt.Printf("  (%d failures)", g.Failures)
	}
	fmt.Println()
}

func vals(args []int64) []ifdb.Value {
	out := make([]ifdb.Value, len(args))
	for i, a := range args {
		out[i] = ifdb.Int(a)
	}
	return out
}

// ---------------------------------------------------------------------------
// -exp prepared

// expPrepared measures what wire-level prepared statements (API v2)
// buy on a point-read schedule against one server, five ways:
//
//   - inline literals: every op rendered as a distinct SQL text
//     (Op.InlineSQL) — the naive app pattern prepared statements exist
//     to kill. Every call pays a full parse and poisons the parse
//     cache with dead entries.
//   - parameterized text: the canonical $1 text. The engine's parse
//     cache absorbs the re-parse, but every call still ships the text
//     and pays the cache lookup.
//   - prepared handles: PREPARE once per worker connection, EXECUTE a
//     handle + parameters. No parser, no cache lookup, minimal bytes.
//   - router: text / router: prepared — the same pair through a
//     single-node client.Router's pooled connections.
//
// All five modes execute the same sim schedule, so their numbers are
// the execution style and nothing else. Engine parse counts are
// printed per mode: "skips re-parsing" is a measured number.
func expPrepared() {
	fmt.Println("== prepared: prepared-vs-reparsed statement throughput ==")
	const seedRows = 1000
	sched := scheduleFor("prepared", simWorkload("kv", seedRows,
		[]sim.Cohort{{Name: "kv", Weight: 1, Mix: sim.StmtMix{PointRead: 1}}}))
	fmt.Printf("(%s)\n", describeSched(sched))

	cfg := ifdb.Config{}
	if benchRep != nil {
		// Durable engine when recording: the JSON report's registry
		// section includes WAL fsync counts, which an in-memory engine
		// never produces. The measured workload is read-only, so only
		// the seeding pays.
		dir, err := os.MkdirTemp("", "ifdb-bench-prep")
		check(err)
		defer os.RemoveAll(dir)
		cfg = ifdb.Config{DataDir: dir}
	}
	db := ifdb.MustOpen(cfg)
	defer db.Close()
	admin := db.AdminSession()
	check(errOf(admin.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`)))
	for i := 0; i < seedRows; i++ {
		check(errOf(admin.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(int64(i)), ifdb.Int(int64(i)))))
	}
	srv := wire.NewServer(db.Engine(), "")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	exp := report.Experiment{Name: "prepared", Arrival: sched.W.Arrival, Rate: sched.W.Rate}
	runMode := func(label string, exec sim.Exec, cleanup func()) {
		parse0 := db.Engine().ParseCount()
		st, err := sim.Run(sched, simRunOpts(sched), exec)
		check(err)
		if cleanup != nil {
			cleanup()
		}
		g := groupFrom(label, mergeCohorts(st), st.Elapsed)
		g.Parses = int64(db.Engine().ParseCount() - parse0)
		if g.Ops > 0 {
			g.ParsesPerStmt = float64(g.Parses) / float64(g.Ops)
		}
		exp.Groups = append(exp.Groups, g)
		printGroup(g)
	}
	dialN := func() []*client.Conn {
		conns := make([]*client.Conn, sched.W.Workers)
		for i := range conns {
			c, err := client.Dial(addr, "", 0)
			check(err)
			conns[i] = c
		}
		return conns
	}
	closeAll := func(conns []*client.Conn) func() {
		return func() {
			for _, c := range conns {
				c.Close()
			}
		}
	}

	fmt.Println("-- single node (one Conn per worker) --")
	{
		conns := dialN()
		runMode("inline literals (re-parse)", func(op *sim.Op, lap int) error {
			_, err := conns[op.Worker].Exec(op.InlineSQL(lap))
			return err
		}, closeAll(conns))
	}
	{
		conns := dialN()
		runMode("parameterized text", func(op *sim.Op, lap int) error {
			_, err := conns[op.Worker].Exec(op.SQL, vals(op.LapArgs(lap))...)
			return err
		}, closeAll(conns))
	}
	{
		conns := dialN()
		// Per-worker handle caches: each worker is single-threaded, so
		// its map needs no lock.
		stmts := make([]map[string]*client.Stmt, len(conns))
		for i := range stmts {
			stmts[i] = map[string]*client.Stmt{}
		}
		runMode("prepared handles", func(op *sim.Op, lap int) error {
			st := stmts[op.Worker][op.SQL]
			if st == nil {
				var err error
				st, err = conns[op.Worker].Prepare(op.SQL)
				if err != nil {
					return err
				}
				stmts[op.Worker][op.SQL] = st
			}
			_, err := st.Exec(vals(op.LapArgs(lap))...)
			return err
		}, closeAll(conns))
	}

	fmt.Println("-- through client.Router (pooled conns, shared) --")
	router, err := client.OpenRouter(client.RouterConfig{Addrs: []string{addr}, PoolSize: sched.W.Workers})
	check(err)
	defer router.Close()
	runMode("router: text", func(op *sim.Op, lap int) error {
		_, err := router.Exec(op.SQL, vals(op.LapArgs(lap))...)
		return err
	}, nil)
	var rmu sync.Mutex
	rstmts := map[string]*client.RouterStmt{}
	runMode("router: prepared", func(op *sim.Op, lap int) error {
		rmu.Lock()
		st := rstmts[op.SQL]
		if st == nil {
			var err error
			st, err = router.Prepare(op.SQL)
			if err != nil {
				rmu.Unlock()
				return err
			}
			rstmts[op.SQL] = st
		}
		rmu.Unlock()
		_, err := st.Exec(vals(op.LapArgs(lap))...)
		return err
	}, nil)
	fmt.Println("(parses = engine-side sql.ParseAll invocations during the run;")
	fmt.Println(" prepared executions ship a statement handle, not text — see BENCH.md)")
	fmt.Println()

	if *overheadFlag {
		runOverhead(addr, seedRows)
	}
	benchReportAdd(exp)
}

// runOverhead is the metrics-registry A/B behind -overhead: the
// prepared-handles mode re-run with the registry disabled and enabled
// in alternating rounds. The true cost under measurement — one branch
// on a disabled flag versus a dozen uncontended atomic adds per
// statement — is far below scheduler noise, so this leans on precision
// rather than load: a single worker, fixed op counts per round, many
// finely interleaved rounds with the off/on order alternating (so
// monotonic host drift cancels), and the median of per-round ratios as
// the reported number.
func runOverhead(addr string, seedRows int) {
	fmt.Println("-- registry overhead (prepared handles, metrics off vs on) --")
	c, err := client.Dial(addr, "", 0)
	check(err)
	defer c.Close()
	st, err := c.Prepare(`SELECT v FROM kv WHERE k = $1`)
	check(err)
	rng := rand.New(rand.NewSource(99))
	timed := func(n int) float64 {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if _, err := st.Exec(ifdb.Int(int64(rng.Intn(seedRows)))); err != nil {
				check(err)
			}
		}
		return float64(n) / time.Since(t0).Seconds()
	}
	warmRate := timed(2000) // warm-up doubles as batch-size calibration
	batch := int(warmRate * 0.005)
	if batch < 200 {
		batch = 200
	}
	const pairs = 150
	var ratios []float64
	var offSecs, onSecs float64
	for p := 0; p < pairs; p++ {
		var offR, onR float64
		if p%2 == 0 {
			obs.SetEnabled(false)
			offR = timed(batch)
			obs.SetEnabled(true)
			onR = timed(batch)
		} else {
			obs.SetEnabled(true)
			onR = timed(batch)
			obs.SetEnabled(false)
			offR = timed(batch)
		}
		offSecs += float64(batch) / offR
		onSecs += float64(batch) / onR
		ratios = append(ratios, onR/offR)
	}
	obs.SetEnabled(true)
	sortFloats(ratios)
	medOff := float64(pairs*batch) / offSecs
	medOn := float64(pairs*batch) / onSecs
	regress := 100 * (1 - ratios[pairs/2])
	fmt.Printf("metrics off %9.0f stmts/s   metrics on %9.0f stmts/s   regression %.2f%% (median of %d paired ratios)\n\n",
		medOff, medOn, regress, pairs)
	if benchRep != nil {
		benchRep.RegistryOverhead = &report.Overhead{
			Pairs:             pairs,
			DisabledStmtsRate: medOff,
			EnabledStmtsRate:  medOn,
			RegressionPct:     regress,
		}
	}
}

// ---------------------------------------------------------------------------
// -exp replica-read

// expReplicaRead measures read scale-out through the routing client:
// a durable primary plus -replicas WAL-shipped read replicas, all
// behind real sockets, driven with a 90/10 read/write sim schedule
// (cohorts "reads" and "writes", so the report carries the two
// statement classes separately). The baseline is the identical
// schedule against the primary alone.
func expReplicaRead() {
	fmt.Println("== replica-read: read scale-out through client.Router ==")
	fmt.Printf("(in-process cluster on GOMAXPROCS=%d; replicas only pay off once\n", runtime.GOMAXPROCS(0))
	fmt.Println(" the primary is CPU-bound, so expect overhead-only numbers on few cores)")
	const seedRows = 1000
	sched := scheduleFor("replica-read", simWorkload("kv", seedRows, []sim.Cohort{
		{Name: "reads", Weight: 9, Mix: sim.StmtMix{PointRead: 1}},
		{Name: "writes", Weight: 1, Mix: sim.StmtMix{PointWrite: 1}},
	}))
	fmt.Printf("(%s)\n", describeSched(sched))

	// Primary: durable engine, client server, replication listener.
	primDir, err := os.MkdirTemp("", "ifdb-bench-prim")
	check(err)
	defer os.RemoveAll(primDir)
	db, err := ifdb.Open(ifdb.Config{DataDir: primDir, SyncMode: "off"})
	check(err)
	defer db.Close()
	admin := db.AdminSession()
	check(errOf(admin.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`)))
	// Seed every cohort's key domain: cohort i's point ops draw from
	// [i·CohortKeyStride, i·CohortKeyStride+seedRows).
	for ci := range sched.W.Cohorts {
		base := int64(ci) * sim.CohortKeyStride
		for i := 0; i < seedRows; i++ {
			check(errOf(admin.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(base+int64(i)), ifdb.Int(0))))
		}
	}
	primSrv := wire.NewServer(db.Engine(), "")
	primLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go primSrv.Serve(primLn)
	defer primSrv.Close()
	replPrim := repl.NewPrimary(db.Engine(), "")
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go replPrim.Serve(replLn)
	defer replPrim.Close()

	// Replicas: followers over the stream, each with a client server.
	addrs := []string{primLn.Addr().String()}
	for i := 0; i < *replicasFlag; i++ {
		dir, err := os.MkdirTemp("", "ifdb-bench-repl")
		check(err)
		defer os.RemoveAll(dir)
		f, err := repl.Open(repl.Config{Addr: replLn.Addr().String(), DataDir: dir, SyncMode: "off"})
		check(err)
		defer f.Close()
		srv := wire.NewServer(f.Engine(), "")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		go srv.Serve(ln)
		defer srv.Close()
		addrs = append(addrs, ln.Addr().String())
	}

	exp := report.Experiment{Name: "replica-read", Arrival: sched.W.Arrival, Rate: sched.W.Rate}
	runTopo := func(label string, addrs []string, stale bool) {
		router, err := client.OpenRouter(client.RouterConfig{
			Addrs: addrs, AllowStaleReads: stale, PoolSize: sched.W.Workers,
		})
		check(err)
		defer router.Close()
		st, err := sim.Run(sched, simRunOpts(sched), func(op *sim.Op, lap int) error {
			_, err := router.Exec(op.SQL, vals(op.LapArgs(lap))...)
			return err
		})
		check(err)
		for _, c := range sched.W.Cohorts {
			g := groupFrom(label+"/"+c.Name, st.Cohorts[c.Name], st.Elapsed)
			exp.Groups = append(exp.Groups, g)
			printGroup(g)
		}
	}
	runTopo("primary", addrs[:1], false)
	runTopo("ryw", addrs, false)
	runTopo("stale", addrs, true)
	benchReportAdd(exp)
	fmt.Println("(RYW = read-your-writes tokens: each read waits out the")
	fmt.Println(" replication lag of the router's last write; stale drops that.)")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Shard topology (shared by shard-write and mixed-tenant)

type benchShard struct {
	db  *ifdb.DB
	srv *wire.Server
	ln  net.Listener
}

// startShards stands up n primaries behind real sockets, each pinned
// to its slice of the keyspace via an ownership guard, sharing one
// shard map keyed on kv.k. Hooks are installed before Serve: handlers
// must not race hook installation.
func startShards(n int, ifc bool) ([]benchShard, *wire.ShardMap, []string) {
	shards := make([]benchShard, n)
	var addrs []string
	for i := range shards {
		db := ifdb.MustOpen(ifdb.Config{IFC: ifc})
		srv := wire.NewServer(db.Engine(), "")
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		shards[i] = benchShard{db, srv, ln}
		addrs = append(addrs, ln.Addr().String())
	}
	smap := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
	for i, a := range addrs {
		smap.Shards = append(smap.Shards, wire.Shard{ID: uint32(i), Primary: a})
	}
	for i := range shards {
		sid := uint32(i)
		shards[i].srv.ShardMap = func() *wire.ShardMap { return smap }
		eng := shards[i].db.Engine()
		eng.SetShardGuard(func(t *catalog.Table, row []types.Value) error {
			if col := smap.KeyColumn(t.Name); col != "" && len(row) > 0 {
				if own := smap.ShardOf(row[0].String()); own != sid {
					return fmt.Errorf("misrouted key %s: owned by shard %d, landed on %d", row[0], own, sid)
				}
			}
			return nil
		})
		go shards[i].srv.Serve(shards[i].ln)
	}
	return shards, smap, addrs
}

func stopShards(shards []benchShard) {
	for i := range shards {
		shards[i].srv.Close()
		shards[i].db.Close()
	}
}

// ---------------------------------------------------------------------------
// -exp shard-write

// expShardWrite measures write scale-out across sharded primaries:
// -shards engines behind real sockets, an insert-only sim schedule
// (unique per-worker ascending keys) routed by hashed key through a
// shard-mapped client.Router. The baseline is the same schedule
// against one shard.
//
// In-process, every shard shares this machine's cores, so the
// aggregate write throughput scales with shards only until GOMAXPROCS
// saturates — on a one-core box expect the curve to be nearly flat.
// What this experiment demonstrates end-to-end is that the write path
// — routing, ownership, version fencing — partitions, which the
// per-shard row counts make visible.
func expShardWrite() {
	fmt.Println("== shard-write: write scale-out across sharded primaries ==")
	fmt.Printf("(in-process shards on GOMAXPROCS=%d: aggregate scaling is capped by cores)\n", runtime.GOMAXPROCS(0))
	sched := scheduleFor("shard-write", simWorkload("kv", 0,
		[]sim.Cohort{{Name: "ingest", Weight: 1, Mix: sim.StmtMix{Insert: 1}}}))
	fmt.Printf("(%s)\n", describeSched(sched))

	exp := report.Experiment{Name: "shard-write", Arrival: sched.W.Arrival, Rate: sched.W.Rate, Notes: map[string]float64{}}
	run := func(label string, nShards int, detail bool) float64 {
		shards, smap, addrs := startShards(nShards, false)
		defer stopShards(shards)
		// PoolSize = workers: every worker keeps a pooled connection per
		// shard, so the measurement is the write path, not dial churn.
		router, err := client.OpenRouter(client.RouterConfig{Addrs: addrs, ShardMap: smap, PoolSize: sched.W.Workers})
		check(err)
		defer router.Close()
		_, err = router.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`) // DDL fans out
		check(err)

		st, err := sim.Run(sched, simRunOpts(sched), func(op *sim.Op, lap int) error {
			_, err := router.Exec(op.SQL, vals(op.LapArgs(lap))...)
			return err
		})
		check(err)
		g := groupFrom(label, mergeCohorts(st), st.Elapsed)
		exp.Groups = append(exp.Groups, g)
		printGroup(g)
		if detail {
			// The tangible half of the demonstration: the keyspace
			// really partitioned (every row passed its shard's
			// ownership guard on the way in).
			for i := range shards {
				res, err := shards[i].db.AdminSession().Exec(`SELECT COUNT(*) FROM kv`)
				check(err)
				var rows int64
				check(client.ScanValue(res.Rows[0][0], &rows))
				exp.Notes[fmt.Sprintf("shard%d_rows", i)] = float64(rows)
				fmt.Printf("  shard %d holds %d rows\n", i, rows)
			}
		}
		return g.StmtsPerSec
	}
	base := run("1 shard", 1, false)
	scaled := run(fmt.Sprintf("%d shards", *shardsFlag), *shardsFlag, true)
	if base > 0 {
		fmt.Printf("aggregate scaling: x%.2f\n", scaled/base)
	}
	benchReportAdd(exp)
	fmt.Println("(insert-only schedule routed by hashed key; each shard is its own")
	fmt.Println(" epoch-fenced replication group, so adding shard primaries scales the")
	fmt.Println(" write path the way adding replicas scales reads — per machine, once")
	fmt.Println(" shards stop sharing cores.)")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// -exp mixed-tenant

// tenantCohorts builds n tenant classes with distinct traffic shares,
// statement mixes, and prepared-statement appetites, each carrying its
// own secrecy tag. Patterns cycle for n > 3.
func tenantCohorts(n int) []sim.Cohort {
	patterns := []sim.Cohort{
		{Weight: 3, Mix: sim.StmtMix{PointRead: 8, PointWrite: 2}, PreparedPct: 100},
		{Weight: 2, Mix: sim.StmtMix{PointRead: 5, PointWrite: 2, Insert: 2, Scan: 1}, PreparedPct: 50},
		{Weight: 1, Mix: sim.StmtMix{PointWrite: 3, Insert: 6, Scan: 1}, PreparedPct: 0},
	}
	out := make([]sim.Cohort, n)
	for i := range out {
		c := patterns[i%len(patterns)]
		c.Name = fmt.Sprintf("tenant%d", i)
		c.Tags = []string{fmt.Sprintf("t_tenant%d", i)}
		out[i] = c
	}
	return out
}

// expMixedTenant drives -tenants labeled cohorts through one shared
// sharded cluster (-shards IFC-enabled primaries). Each cohort runs
// behind its own client.Router whose pooled connections carry the
// cohort's secrecy tag (RouterConfig.Secrecy), so every write is
// stamped per-tenant and Query by Label confines every read — DIFC
// isolation under multi-tenant load, with per-cohort throughput and
// tail latency as the measured numbers.
func expMixedTenant() {
	fmt.Println("== mixed-tenant: labeled tenant cohorts on one sharded cluster ==")
	fmt.Printf("(in-process shards on GOMAXPROCS=%d; IFC on, one secrecy tag per tenant)\n", runtime.GOMAXPROCS(0))
	const keys = 256
	sched := scheduleFor("mixed-tenant", simWorkload("kv", keys, tenantCohorts(*tenantsFlag)))
	fmt.Printf("(%s, %d tenants)\n", describeSched(sched), len(sched.W.Cohorts))
	cohorts := sched.W.Cohorts

	shards, smap, addrs := startShards(*shardsFlag, true)
	defer stopShards(shards)
	// Tags are created in the same order on every shard, so the tag
	// IDs align cluster-wide and one client.Tag value is valid on
	// whichever shard a statement routes to.
	tags := map[string]client.Tag{}
	for i := range shards {
		check(errOf(shards[i].db.AdminSession().Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`)))
		for _, c := range cohorts {
			prin := shards[i].db.CreatePrincipal(c.Name)
			for _, tn := range c.Tags {
				tg, err := shards[i].db.CreateTag(prin, tn)
				check(err)
				if i == 0 {
					tags[tn] = tg
				}
			}
		}
	}

	// One Router per cohort: the cohort's secrecy label rides every
	// pooled connection.
	routers := map[string]*client.Router{}
	stmts := map[string]map[string]*client.RouterStmt{}
	var smu sync.Mutex
	for _, c := range cohorts {
		var sec []client.Tag
		for _, tn := range c.Tags {
			sec = append(sec, tags[tn])
		}
		r, err := client.OpenRouter(client.RouterConfig{
			Addrs: addrs, ShardMap: smap, PoolSize: sched.W.Workers, Secrecy: sec,
		})
		check(err)
		defer r.Close()
		routers[c.Name] = r
		stmts[c.Name] = map[string]*client.RouterStmt{}
	}

	// Seed each tenant's point-op key domain through the tenant's own
	// labeled router, so every seeded row carries exactly that tenant's
	// label — the IFDB write rule then lets the tenant (and only the
	// tenant) update it.
	for ci, c := range cohorts {
		base := int64(ci) * sim.CohortKeyStride
		r := routers[c.Name]
		for k := int64(0); k < keys; k++ {
			if _, err := r.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(base+k), ifdb.Int(0)); err != nil {
				check(err)
			}
		}
	}

	st, err := sim.Run(sched, simRunOpts(sched), func(op *sim.Op, lap int) error {
		r := routers[op.Cohort]
		if r == nil {
			return fmt.Errorf("unknown cohort %q", op.Cohort)
		}
		args := vals(op.LapArgs(lap))
		if op.Prepared {
			smu.Lock()
			pst := stmts[op.Cohort][op.SQL]
			if pst == nil {
				var perr error
				pst, perr = r.Prepare(op.SQL)
				if perr != nil {
					smu.Unlock()
					return perr
				}
				stmts[op.Cohort][op.SQL] = pst
			}
			smu.Unlock()
			_, err := pst.Exec(args...)
			return err
		}
		_, err := r.Exec(op.SQL, args...)
		return err
	})
	check(err)

	exp := report.Experiment{Name: "mixed-tenant", Arrival: sched.W.Arrival, Rate: sched.W.Rate, Notes: map[string]float64{}}
	for _, c := range cohorts {
		g := groupFrom(c.Name, st.Cohorts[c.Name], st.Elapsed)
		exp.Groups = append(exp.Groups, g)
		printGroup(g)
	}
	for i := range shards {
		t := shards[i].db.Engine().Stats().Tuples
		exp.Notes[fmt.Sprintf("shard%d_tuples", i)] = float64(t)
		fmt.Printf("  shard %d holds %d tuples\n", i, t)
	}
	benchReportAdd(exp)
	fmt.Println("(each tenant's rows carry its tag: writes are stamped with the")
	fmt.Println(" cohort label, reads are confined by Query by Label, and the per-")
	fmt.Println(" shard routing counters in the report's registry section show the")
	fmt.Println(" fan-out. See the root simworkload e2e test for the isolation proof.)")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// -diff mode

// runDiff loads two BENCH_*.json reports (legacy BENCH_6 shape
// included) and prints every comparable metric's movement, marking
// those past -diff-threshold in the bad direction as regressions.
// Positive change is always worse (throughput drop, latency rise);
// the exit status stays 0 either way — short benchmark runs are noisy,
// so the verdict is for a human (or a grep for REGRESSION) to act on.
func runDiff(paths []string) {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: ifdb-bench -diff [-diff-threshold pct] old.json new.json")
		os.Exit(2)
	}
	prev, err := report.Load(paths[0])
	check(err)
	cur, err := report.Load(paths[1])
	check(err)
	deltas := report.Diff(prev, cur, *diffThreshold)
	fmt.Printf("== diff: %s (schema %d) → %s (schema %d), threshold %.1f%% ==\n",
		paths[0], prev.Schema, paths[1], cur.Schema, *diffThreshold)
	if len(deltas) == 0 {
		fmt.Println("no comparable metrics (no shared experiment/group pairs)")
		return
	}
	fmt.Printf("%-52s %14s %14s %9s\n", "metric", "old", "new", "worse%")
	for _, d := range deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		fmt.Printf("%-52s %14.1f %14.1f %+8.1f%%%s\n", d.Metric, d.Old, d.New, d.Pct, mark)
	}
	regs := report.Regressions(deltas)
	fmt.Printf("%d regressions past %.1f%% (of %d compared metrics)\n", len(regs), *diffThreshold, len(deltas))
}
