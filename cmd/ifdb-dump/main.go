// Command ifdb-dump produces a label-preserving logical dump of an
// IFDB database — the pg_dump analog the paper modified so that
// "backups include labels" (§7.2).
//
// It connects as a dump principal whose process label the operator has
// raised to cover everything being dumped (or runs against a server in
// baseline mode). Rows are emitted as INSERT statements annotated with
// their _label, so a restore can re-attach labels through trusted
// labeling code.
//
//	ifdb-dump -addr 127.0.0.1:5433 -token secret -tables users,cars
//
// It can also pretty-print a write-ahead log offline, for debugging
// recovery — record type, LSN, XID, and per-type details:
//
//	ifdb-dump -wal /var/lib/ifdb/wal.log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ifdb/client"
	"ifdb/internal/types"
	"ifdb/internal/wal"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5433", "server address")
		token   = flag.String("token", "", "platform token")
		prin    = flag.Uint64("principal", 0, "acting principal id")
		tables  = flag.String("tables", "", "comma-separated tables to dump (required)")
		raise   = flag.String("raise", "", "comma-separated tag names to add to the label first")
		walPath = flag.String("wal", "", "pretty-print this WAL file and exit (offline; no server)")
	)
	flag.Parse()
	if *walPath != "" {
		if err := dumpWAL(*walPath); err != nil {
			fmt.Fprintln(os.Stderr, "ifdb-dump:", err)
			os.Exit(1)
		}
		return
	}
	if *tables == "" {
		fmt.Fprintln(os.Stderr, "ifdb-dump: -tables is required")
		os.Exit(2)
	}

	conn, err := client.Dial(*addr, *token, *prin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdb-dump:", err)
		os.Exit(1)
	}
	defer conn.Close()

	for _, name := range splitList(*raise) {
		t, err := conn.LookupTag(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ifdb-dump: tag %q: %v\n", name, err)
			os.Exit(1)
		}
		conn.AddSecrecy(t)
	}

	for _, table := range splitList(*tables) {
		res, err := conn.Exec("SELECT * FROM " + table)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ifdb-dump: %s: %v\n", table, err)
			os.Exit(1)
		}
		fmt.Printf("-- table %s: %d rows\n", table, len(res.Rows))
		for i, row := range res.Rows {
			vals := make([]string, len(row))
			for j, v := range row {
				vals[j] = sqlLiteral(v)
			}
			line := fmt.Sprintf("INSERT INTO %s VALUES (%s);", table, strings.Join(vals, ", "))
			if res.RowLabels != nil {
				line += fmt.Sprintf(" -- _label=%s", res.RowLabels[i])
			}
			fmt.Println(line)
		}
	}
}

// dumpWAL prints every intact record of a write-ahead log, one per
// line, and reports a torn tail (the normal shape of a crash).
func dumpWAL(path string) error {
	// ReadAll treats a missing file as an empty log (what recovery
	// wants); for a debugging tool that would masquerade as "0
	// records", so check explicitly.
	if _, err := os.Stat(path); err != nil {
		return err
	}
	recs, torn, err := wal.ReadAll(path)
	if err != nil {
		return err
	}
	commits, aborts := 0, 0
	for i := range recs {
		switch recs[i].Type {
		case wal.RecCommit:
			commits++
		case wal.RecAbort:
			aborts++
		}
		fmt.Println(recs[i].Summary())
	}
	fmt.Printf("-- %d records, %d commits, %d aborts", len(recs), commits, aborts)
	if torn {
		fmt.Printf(", torn tail (crash artifact; ignored by recovery)")
	}
	fmt.Println()
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func sqlLiteral(v types.Value) string {
	switch v.Kind() {
	case types.KindText:
		return "'" + strings.ReplaceAll(v.Text(), "'", "''") + "'"
	case types.KindTime:
		return "'" + v.String() + "'"
	default:
		return v.String()
	}
}
