// Command ifdb-server runs an IFDB database server speaking the wire
// protocol of internal/wire. Clients must present the platform token
// (attesting they are a trusted DIFC runtime, paper §2).
//
//	ifdb-server -addr :5433 -token secret [-no-ifc] [-datadir /var/lib/ifdb]
//	            [-sync group|commit|off] [-checkpoint-interval 1m]
//	            [-repl-listen :5434] [-replica-of primary:5434]
//
// With -datadir the server is durable: it recovers from the
// write-ahead log at startup, group-commits by default, checkpoints
// periodically, and SIGINT/SIGTERM trigger a clean shutdown (final
// checkpoint, WAL close).
//
// Replication: -repl-listen makes this server a primary, serving its
// WAL to followers on the given address; -replica-of makes it a
// read-only replica of the named primary — it bootstraps (or resumes)
// from the primary's stream and serves queries, rejecting writes.
// -repl-token authenticates followers (defaults to -token).
//
// An optional -init script (SQL, semicolon-separated) runs as the
// administrator before serving, for schema bootstrap.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ifdb"
	"ifdb/internal/repl"
	"ifdb/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:5433", "listen address")
		token    = flag.String("token", "", "platform attestation token (empty accepts anyone)")
		noIFC    = flag.Bool("no-ifc", false, "disable information flow control (baseline mode)")
		dataDir  = flag.String("datadir", "", "data directory (heap files + WAL); empty runs in-memory")
		syncMode = flag.String("sync", "group", "WAL sync mode: off|commit|group")
		ckptIvl  = flag.Duration("checkpoint-interval", time.Minute, "checkpoint period (0 disables; requires -datadir)")
		initSQL  = flag.String("init", "", "path to a SQL script to run at startup")
		vacuum   = flag.Duration("vacuum-interval", time.Minute, "autovacuum period (0 disables)")

		replListen = flag.String("repl-listen", "", "serve the WAL to replicas on this address (primary; requires -datadir)")
		replicaOf  = flag.String("replica-of", "", "run as a read-only replica of the primary at this address (requires -datadir)")
		replToken  = flag.String("repl-token", "", "replication token (defaults to -token)")
	)
	flag.Parse()
	if *replToken == "" {
		*replToken = *token
	}
	if *replicaOf != "" && *replListen != "" {
		log.Fatal("ifdb-server: -replica-of and -repl-listen are mutually exclusive (cascading replication is not supported)")
	}
	if *replicaOf != "" && *initSQL != "" {
		log.Fatal("ifdb-server: -init is meaningless on a replica (schema comes from the primary)")
	}

	db, err := ifdb.Open(ifdb.Config{
		IFC:             !*noIFC,
		DataDir:         *dataDir,
		SyncMode:        *syncMode,
		CheckpointEvery: *ckptIvl,
		ReplicaOf:       *replicaOf,
		ReplToken:       *replToken,
	})
	if err != nil {
		log.Fatalf("ifdb-server: open: %v", err)
	}
	if *initSQL != "" {
		script, err := os.ReadFile(*initSQL)
		if err != nil {
			log.Fatalf("ifdb-server: read init script: %v", err)
		}
		if _, err := db.AdminSession().Exec(string(script)); err != nil {
			log.Fatalf("ifdb-server: init script: %v", err)
		}
	}

	stopVacuum := make(chan struct{})
	if *vacuum > 0 {
		go func() {
			t := time.NewTicker(*vacuum)
			defer t.Stop()
			for {
				select {
				case <-stopVacuum:
					return
				case <-t.C:
					if n := db.Vacuum(); n > 0 {
						log.Printf("ifdb-server: vacuum reclaimed %d versions", n)
					}
				}
			}
		}()
	}

	srv := wire.NewServer(db.Engine(), *token)
	srv.ErrorLog = log.Default()

	// Primary side of replication: serve the WAL to followers.
	var primary *repl.Primary
	if *replListen != "" {
		if *dataDir == "" {
			log.Fatal("ifdb-server: -repl-listen requires -datadir (no WAL to ship without one)")
		}
		primary = repl.NewPrimary(db.Engine(), *replToken)
		primary.ErrorLog = log.Default()
		go func() {
			if err := primary.ListenAndServe(*replListen); err != nil {
				log.Fatalf("ifdb-server: repl listener: %v", err)
			}
		}()
		log.Printf("ifdb-server: serving replication on %s", *replListen)
	}

	// Clean shutdown: stop accepting, checkpoint, close the WAL.
	// shuttingDown closes *before* the listener so the main goroutine
	// can tell a shutdown-induced accept error from a real one.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		log.Printf("ifdb-server: %v: shutting down", sig)
		close(shuttingDown)
		close(stopVacuum)
		if primary != nil {
			if err := primary.Close(); err != nil {
				log.Printf("ifdb-server: close repl listener: %v", err)
			}
		}
		if err := srv.Close(); err != nil {
			log.Printf("ifdb-server: close listener: %v", err)
		}
		if err := db.Close(); err != nil {
			log.Printf("ifdb-server: close database: %v", err)
		}
		close(done)
	}()

	role := "primary"
	if db.IsReplica() {
		role = "replica of " + *replicaOf
	}
	log.Printf("ifdb-server: listening on %s (IFC=%v, datadir=%q, sync=%s, %s)", *addr, !*noIFC, *dataDir, *syncMode, role)
	if err := srv.ListenAndServe(*addr); err != nil {
		select {
		case <-shuttingDown:
			// Listener closed by the shutdown path; wait for the final
			// checkpoint before exiting.
		default:
			log.Fatalf("ifdb-server: %v", err)
		}
	}
	<-done
}
