// Command ifdb-server runs an IFDB database server speaking the wire
// protocol of internal/wire. Clients must present the platform token
// (attesting they are a trusted DIFC runtime, paper §2).
//
//	ifdb-server -addr :5433 -token secret [-no-ifc] [-datadir /var/lib/ifdb]
//	            [-sync group|commit|off] [-checkpoint-interval 1m]
//	            [-repl-listen :5434] [-replica-of primary:5434]
//	            [-repl-retain 64MB] [-cluster a:5433,b:5433] [-auto-failover]
//	            [-shard-id 0 -shard-map shards.conf]
//	            [-metrics-listen :9090] [-log-level info] [-slow-query 100ms]
//
// Observability: -metrics-listen serves the process metrics registry
// in Prometheus text format on /metrics (plus net/http/pprof under
// /debug/pprof). -log-level selects the slog level for the structured
// diagnostics on stderr; IFC security events (declassifications,
// authority denials) and -slow-query statements land on the same
// stream tagged channel=audit, carrying per-statement trace IDs. See
// ARCHITECTURE.md § Observability.
//
// With -datadir the server is durable: it recovers from the
// write-ahead log at startup, group-commits by default, checkpoints
// periodically, and SIGINT/SIGTERM trigger a clean shutdown (final
// checkpoint, WAL close).
//
// Replication: -repl-listen makes this server a primary, serving its
// WAL to followers on the given address; -replica-of makes it a
// read-only replica of the named primary — it bootstraps (or resumes)
// from the primary's stream and serves queries, rejecting writes.
// -repl-token authenticates followers (defaults to -token).
// -repl-retain caps how many WAL bytes a lagging replica may pin
// against checkpoint truncation (0 = unlimited).
//
// Failover: a replica accepts the PROMOTE command over the client
// protocol (ifdb-cli \promote, or the cluster coordinator) and turns
// into a writable primary under a bumped WAL epoch; a stale primary is
// fenced and can only rejoin by re-bootstrapping as a replica. When
// both -replica-of and -repl-listen are given, the replication
// listener starts at the moment of promotion, so fenced peers can
// rejoin as replicas of the new primary. -cluster names every node's
// client address and runs the health-checking coordinator in-process;
// with -auto-failover it promotes the most-caught-up replica after the
// primary has been unreachable for -fail-after probes.
//
// Sharding: -shard-map names a shard map file (see the README's
// sharded-cluster walkthrough for the format) and makes this server
// shard-aware: it serves the map over SHARDMAP frames and refuses
// statements routed under a stale map version. -shard-id additionally
// pins the server to one shard: inserts whose shard key hashes to a
// different shard are refused (defense against misrouted or
// shard-unaware clients). When the in-process coordinator runs
// (-cluster, or -shard-map alone with -auto-failover), a shard
// failover rewrites the served map with a bumped version, and routers
// follow it.
//
// An optional -init script (SQL, semicolon-separated) runs as the
// administrator before serving, for schema bootstrap.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ifdb"
	"ifdb/internal/catalog"
	"ifdb/internal/cluster"
	"ifdb/internal/engine"
	"ifdb/internal/obs"
	"ifdb/internal/repl"
	"ifdb/internal/types"
	"ifdb/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:5433", "listen address")
		token    = flag.String("token", "", "platform attestation token (empty accepts anyone)")
		noIFC    = flag.Bool("no-ifc", false, "disable information flow control (baseline mode)")
		dataDir  = flag.String("datadir", "", "data directory (heap files + WAL); empty runs in-memory")
		syncMode = flag.String("sync", "group", "WAL sync mode: off|commit|group")
		ckptIvl  = flag.Duration("checkpoint-interval", time.Minute, "checkpoint period (0 disables; requires -datadir)")
		initSQL  = flag.String("init", "", "path to a SQL script to run at startup")
		vacuum   = flag.Duration("vacuum-interval", time.Minute, "autovacuum period (0 disables)")

		replListen = flag.String("repl-listen", "", "serve the WAL to replicas on this address (on a replica: armed, starts at promotion)")
		replicaOf  = flag.String("replica-of", "", "run as a read-only replica of the primary at this address (requires -datadir)")
		replToken  = flag.String("repl-token", "", "replication token (defaults to -token)")
		replRetain = flag.Int64("repl-retain", 0, "retained-WAL budget in bytes a lagging replica may pin (0 = unlimited)")

		clusterNodes = flag.String("cluster", "", "comma-separated client addresses of every cluster node: runs the failover coordinator")
		autoFailover = flag.Bool("auto-failover", false, "with -cluster: automatically promote the most-caught-up replica when the primary dies")
		probeIvl     = flag.Duration("probe-interval", time.Second, "with -cluster: health probe period")
		failAfter    = flag.Int("fail-after", 3, "with -cluster: consecutive failed primary probes before automatic failover")

		shardID      = flag.Int("shard-id", -1, "this server's shard id (with -shard-map): refuse rows owned by other shards")
		shardMapFile = flag.String("shard-map", "", "shard map file: serve SHARDMAP frames and fence stale-map statements")

		metricsListen = flag.String("metrics-listen", "", "serve Prometheus /metrics and /debug/pprof on this address")
		logLevel      = flag.String("log-level", "info", "log level: debug|info|warn|error")
		slowQuery     = flag.Duration("slow-query", 0, "log statements slower than this to the audit channel (0 disables)")
	)
	flag.Parse()
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ifdb-server:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	// The audit/slow-query channel: IFC security events
	// (declassifications, authority denials) and slow statements land
	// here with their trace IDs, distinguishable by channel=audit.
	obs.SetAudit(logger.With("channel", "audit"))
	die := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *replToken == "" {
		*replToken = *token
	}
	if *replicaOf != "" && *initSQL != "" {
		die("-init is meaningless on a replica (schema comes from the primary)")
	}

	if *metricsListen != "" {
		go func() {
			if err := http.ListenAndServe(*metricsListen, obs.Handler(obs.Default)); err != nil {
				die("metrics listener failed", "err", err)
			}
		}()
		logger.Info("serving metrics", "addr", *metricsListen)
	}

	db, err := ifdb.Open(ifdb.Config{
		IFC:              !*noIFC,
		DataDir:          *dataDir,
		SyncMode:         *syncMode,
		CheckpointEvery:  *ckptIvl,
		ReplicaOf:        *replicaOf,
		ReplToken:        *replToken,
		ReplRetainBudget: *replRetain,
	})
	if err != nil {
		die("open failed", "err", err)
	}
	if *initSQL != "" {
		script, err := os.ReadFile(*initSQL)
		if err != nil {
			die("read init script failed", "err", err)
		}
		if _, err := db.AdminSession().Exec(string(script)); err != nil {
			die("init script failed", "err", err)
		}
	}

	stopVacuum := make(chan struct{})
	if *vacuum > 0 {
		go func() {
			t := time.NewTicker(*vacuum)
			defer t.Stop()
			for {
				select {
				case <-stopVacuum:
					return
				case <-t.C:
					if n := db.Vacuum(); n > 0 {
						logger.Debug("vacuum reclaimed versions", "count", n)
					}
				}
			}
		}()
	}

	srv := wire.NewServer(db.Engine(), *token)
	srv.Logger = logger
	srv.SlowQuery = *slowQuery
	srv.StatusErr = db.ReplicationErr

	// Sharding: parse the map, serve it over SHARDMAP frames (the
	// coordinator's live copy once one runs — its failovers bump the
	// version), and pin this server to its shard. The coordinator is
	// created below, before the server accepts its first connection, so
	// the closure's read of coord is ordered after its assignment.
	var coord *cluster.Coordinator
	var staticMap *wire.ShardMap
	if *shardMapFile != "" {
		text, err := os.ReadFile(*shardMapFile)
		if err != nil {
			die("read shard map failed", "err", err)
		}
		staticMap, err = wire.ParseShardMap(string(text))
		if err != nil {
			die("bad shard map", "err", err)
		}
		if *shardID >= staticMap.NumShards() {
			die("-shard-id out of range", "shard_id", *shardID, "shards", staticMap.NumShards())
		}
		currentMap := func() *wire.ShardMap {
			if coord != nil {
				if m := coord.ShardMap(); m != nil {
					return m
				}
			}
			return staticMap
		}
		srv.ShardMap = currentMap
		if *shardID >= 0 {
			sid := uint32(*shardID)
			db.Engine().SetShardGuard(func(t *catalog.Table, row []types.Value) error {
				m := currentMap()
				keyCol := m.KeyColumn(t.Name)
				if keyCol == "" {
					return nil // table not sharded by key
				}
				for i, col := range t.Columns {
					if strings.EqualFold(col.Name, keyCol) {
						if own := m.ShardOf(row[i].String()); own != sid {
							return fmt.Errorf("%w: key %s of table %s hashes to shard %d, this server is shard %d",
								engine.ErrShardOwnership, row[i], t.Name, own, sid)
						}
						return nil
					}
				}
				return nil
			})
		}
	} else if *shardID >= 0 {
		die("-shard-id requires -shard-map")
	}

	// Primary side of replication: serve the WAL to followers. On a
	// replica with -repl-listen the listener is armed but deferred to
	// promotion: a replica must not serve a stream (no cascading
	// replication), but the moment it is promoted, fenced peers need
	// somewhere to rejoin.
	var (
		primaryMu sync.Mutex
		primary   *repl.Primary
	)
	startReplListener := func() {
		primaryMu.Lock()
		defer primaryMu.Unlock()
		if primary != nil || *replListen == "" {
			return
		}
		p := repl.NewPrimary(db.Engine(), *replToken)
		p.Logger = logger
		primary = p
		go func() {
			if err := p.ListenAndServe(*replListen); err != nil {
				die("repl listener failed", "err", err)
			}
		}()
		logger.Info("serving replication", "addr", *replListen)
	}
	if *replListen != "" && !db.IsReplica() {
		if *dataDir == "" {
			die("-repl-listen requires -datadir (no WAL to ship without one)")
		}
		startReplListener()
	}

	// Failover: replicas honor PROMOTE over the client protocol.
	if db.IsReplica() {
		srv.Promote = func() error {
			if err := db.Promote(); err != nil {
				return err
			}
			logger.Warn("promoted to primary", "epoch", db.Epoch())
			startReplListener()
			return nil
		}
	}

	// The in-process failover coordinator (health checks + optional
	// automatic promotion of the most-caught-up replica; per shard when
	// a shard map is loaded). With -shard-map alone, -auto-failover is
	// enough to run it — the map's members are the node set.
	stopCoord := make(chan struct{})
	if *clusterNodes != "" || (staticMap != nil && *autoFailover) {
		var nodes []string
		if *clusterNodes != "" {
			nodes = strings.Split(*clusterNodes, ",")
		}
		c, err := cluster.New(cluster.Config{
			Nodes:         nodes,
			Token:         *token,
			ProbeInterval: *probeIvl,
			FailAfter:     *failAfter,
			AutoPromote:   *autoFailover,
			Logger:        logger,
			ShardMap:      staticMap,
		})
		if err != nil {
			die("coordinator failed", "err", err)
		}
		coord = c
		go coord.Run(stopCoord)
		logger.Info("coordinating cluster", "nodes", *clusterNodes, "auto_failover", *autoFailover, "sharded", staticMap != nil)
	}

	// Clean shutdown: stop accepting, checkpoint, close the WAL.
	// shuttingDown closes *before* the listener so the main goroutine
	// can tell a shutdown-induced accept error from a real one.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	shuttingDown := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		logger.Info("shutting down", "signal", sig.String())
		close(shuttingDown)
		close(stopVacuum)
		close(stopCoord)
		primaryMu.Lock()
		p := primary
		primaryMu.Unlock()
		if p != nil {
			if err := p.Close(); err != nil {
				logger.Warn("close repl listener failed", "err", err)
			}
		}
		if err := srv.Close(); err != nil {
			logger.Warn("close listener failed", "err", err)
		}
		if err := db.Close(); err != nil {
			logger.Warn("close database failed", "err", err)
		}
		close(done)
	}()

	role := "primary"
	if db.IsReplica() {
		role = "replica of " + *replicaOf
	}
	logger.Info("listening", "addr", *addr, "ifc", !*noIFC, "datadir", *dataDir,
		"sync", *syncMode, "role", role, "epoch", db.Epoch())
	if err := srv.ListenAndServe(*addr); err != nil {
		select {
		case <-shuttingDown:
			// Listener closed by the shutdown path; wait for the final
			// checkpoint before exiting.
		default:
			die("serve failed", "err", err)
		}
	}
	<-done
}
