// Command ifdb-server runs an IFDB database server speaking the wire
// protocol of internal/wire. Clients must present the platform token
// (attesting they are a trusted DIFC runtime, paper §2).
//
//	ifdb-server -addr :5433 -token secret [-no-ifc] [-datadir /var/lib/ifdb]
//
// An optional -init script (SQL, semicolon-separated) runs as the
// administrator before serving, for schema bootstrap.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"ifdb"
	"ifdb/internal/wire"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:5433", "listen address")
		token   = flag.String("token", "", "platform attestation token (empty accepts anyone)")
		noIFC   = flag.Bool("no-ifc", false, "disable information flow control (baseline mode)")
		dataDir = flag.String("datadir", "", "directory for USING DISK heap files")
		initSQL = flag.String("init", "", "path to a SQL script to run at startup")
		vacuum  = flag.Duration("vacuum-interval", time.Minute, "autovacuum period (0 disables)")
	)
	flag.Parse()

	db := ifdb.Open(ifdb.Config{IFC: !*noIFC, DataDir: *dataDir})
	if *initSQL != "" {
		script, err := os.ReadFile(*initSQL)
		if err != nil {
			log.Fatalf("ifdb-server: read init script: %v", err)
		}
		if _, err := db.AdminSession().Exec(string(script)); err != nil {
			log.Fatalf("ifdb-server: init script: %v", err)
		}
	}

	if *vacuum > 0 {
		go func() {
			for range time.Tick(*vacuum) {
				if n := db.Vacuum(); n > 0 {
					log.Printf("ifdb-server: vacuum reclaimed %d versions", n)
				}
			}
		}()
	}

	srv := wire.NewServer(db.Engine(), *token)
	srv.ErrorLog = log.Default()
	log.Printf("ifdb-server: listening on %s (IFC=%v)", *addr, !*noIFC)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("ifdb-server: %v", err)
	}
}
