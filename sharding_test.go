package ifdb_test

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ifdb"
	"ifdb/client"
	"ifdb/internal/catalog"
	"ifdb/internal/cluster"
	"ifdb/internal/engine"
	"ifdb/internal/repl"
	"ifdb/internal/types"
	"ifdb/internal/wire"
)

// shardGuardFor builds the per-server ownership guard ifdb-server
// installs with -shard-id: rows whose shard key hashes elsewhere are
// refused.
func shardGuardFor(mapFn func() *wire.ShardMap, sid uint32) engine.ShardGuard {
	return func(t *catalog.Table, row []types.Value) error {
		m := mapFn()
		keyCol := m.KeyColumn(t.Name)
		if keyCol == "" {
			return nil
		}
		for i, col := range t.Columns {
			if strings.EqualFold(col.Name, keyCol) {
				if own := m.ShardOf(row[i].String()); own != sid {
					return fmt.Errorf("%w: key %s hashes to shard %d, this is shard %d",
						engine.ErrShardOwnership, row[i], own, sid)
				}
				return nil
			}
		}
		return nil
	}
}

// keyForShard finds a small non-negative key owned by shard sid.
func keyForShard(m *wire.ShardMap, sid uint32, not ...int64) int64 {
	for k := int64(0); ; k++ {
		skip := false
		for _, n := range not {
			if k == n {
				skip = true
			}
		}
		if !skip && m.ShardOf(strconv.FormatInt(k, 10)) == sid {
			return k
		}
	}
}

// startShard stands up one in-memory shard server with the ownership
// guard and the shard-map hook installed before it serves.
func startShard(t *testing.T, mapFn func() *wire.ShardMap, sid uint32) (string, *ifdb.DB, *wire.Server) {
	t.Helper()
	db := ifdb.MustOpen(ifdb.Config{})
	db.Engine().SetShardGuard(shardGuardFor(mapFn, sid))
	srv := wire.NewServer(db.Engine(), "")
	srv.ShardMap = mapFn
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); db.Close() })
	return ln.Addr().String(), db, srv
}

// TestShardedRouterRoutesByKey is the sharding happy path over real
// sockets: DDL fans out, single-key statements land on the owning
// shard (each shard's ownership guard would refuse strays), fan-out
// reads merge every shard's rows.
func TestShardedRouterRoutesByKey(t *testing.T) {
	smap := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
	mapFn := func() *wire.ShardMap { return smap }
	addr0, db0, _ := startShard(t, mapFn, 0)
	addr1, db1, _ := startShard(t, mapFn, 1)
	smap.Shards = []wire.Shard{{ID: 0, Primary: addr0}, {ID: 1, Primary: addr1}}

	router, err := client.OpenRouter(client.RouterConfig{Addrs: []string{addr0, addr1}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	// The Router discovered the map from a node's SHARDMAP frame (no
	// cfg.ShardMap was given): DDL must fan out to both shards.
	if _, err := router.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	const rows = 40
	for i := 0; i < rows; i++ {
		if _, err := router.Exec(`INSERT INTO kv VALUES ($1, $2)`,
			ifdb.Int(int64(i)), ifdb.Text(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	// Partitioning really happened: rows divide across the shards and
	// every row passed its shard's ownership guard on the way in.
	count := func(db *ifdb.DB) int {
		res, err := db.AdminSession().Exec(`SELECT k FROM kv`)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}
	n0, n1 := count(db0), count(db1)
	if n0+n1 != rows {
		t.Fatalf("rows split %d+%d, want %d total", n0, n1, rows)
	}
	if n0 == 0 || n1 == 0 {
		t.Fatalf("degenerate split %d+%d: expected both shards to own keys", n0, n1)
	}
	for i := 0; i < rows; i++ {
		own := smap.ShardOf(strconv.Itoa(i))
		db := db0
		if own == 1 {
			db = db1
		}
		res, err := db.AdminSession().Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("key %d: %d rows on its owning shard %d", i, len(res.Rows), own)
		}
	}

	// Single-key reads route; shard-agnostic reads fan out and merge.
	for _, i := range []int{0, 7, 19, 33} {
		res, err := router.Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].Text() != fmt.Sprintf("v%d", i) {
			t.Fatalf("routed read of key %d: %v", i, res.Rows)
		}
	}
	res, err := router.Exec(`SELECT k FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rows {
		t.Fatalf("fan-out read merged %d rows, want %d", len(res.Rows), rows)
	}

	// A write the Router cannot confine to one shard is refused, not
	// guessed at.
	if _, err := router.Exec(`UPDATE kv SET v = 'x'`); err == nil ||
		!strings.Contains(err.Error(), "cannot derive a shard key") {
		t.Fatalf("keyless sharded write: err = %v, want shard-key refusal", err)
	}
}

// TestStaleShardMapWriteRefused asserts the version fence: a write
// routed under an outdated map version is refused by the server with
// the current map attached, and a Router holding the stale map adopts
// the attachment and re-routes without surfacing the error.
func TestStaleShardMapWriteRefused(t *testing.T) {
	cur := &wire.ShardMap{Version: 2, Keys: map[string]string{"kv": "k"}}
	mapFn := func() *wire.ShardMap { return cur }
	addr0, _, _ := startShard(t, mapFn, 0)
	addr1, _, _ := startShard(t, mapFn, 1)
	cur.Shards = []wire.Shard{{ID: 0, Primary: addr0}, {ID: 1, Primary: addr1}}

	// Schema on both shards (shard-unaware conns carry version 0 and
	// are accepted; the ownership guard alone vets them).
	for _, a := range []string{addr0, addr1} {
		c, err := client.Dial(a, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}

	// Raw connection: a statement stamped with version 1 is refused and
	// the refusal carries the server's version-2 map.
	conn, err := client.Dial(addr0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	k0 := keyForShard(cur, 0)
	_, err = conn.ExecShard(0, 1, `INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(k0), ifdb.Int(1))
	if err == nil || !strings.Contains(err.Error(), wire.StaleShardMapErr) {
		t.Fatalf("stale-version write: err = %v, want %q", err, wire.StaleShardMapErr)
	}
	attached := client.StaleShardMap(err)
	if attached == nil || attached.Version != 2 {
		t.Fatalf("stale refusal attached map %+v, want the server's version-2 map", attached)
	}

	// The fence is asymmetric: a client AHEAD of the server (the normal
	// transient after a failover bumps the map in the coordinator's
	// process before other servers hear) is accepted — the ownership
	// guard still vets placement. Refusing ahead clients would deadlock
	// healthy shards cluster-wide.
	if _, err := conn.ExecShard(0, 3, `INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(k0), ifdb.Int(1)); err != nil {
		t.Fatalf("ahead-of-server shard version refused: %v", err)
	}

	// A Router opened with the stale version-1 map self-heals: the
	// refusal's attachment is adopted mid-write and the statement lands.
	stale := cur.Clone()
	stale.Version = 1
	router, err := client.OpenRouter(client.RouterConfig{
		Addrs: []string{addr0, addr1}, ShardMap: stale,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if _, err := router.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(keyForShard(cur, 1)), ifdb.Int(2)); err != nil {
		t.Fatalf("router under stale map should adopt and retry, got %v", err)
	}
}

// TestShardOwnershipGuard asserts the engine-level backstop: a
// shard-unaware client (plain Conn, no shard version) writing a key
// another shard owns is refused by the ownership guard.
func TestShardOwnershipGuard(t *testing.T) {
	smap := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
	mapFn := func() *wire.ShardMap { return smap }
	addr0, _, _ := startShard(t, mapFn, 0)
	smap.Shards = []wire.Shard{
		{ID: 0, Primary: addr0},
		{ID: 1, Primary: "127.0.0.1:1"}, // never dialed
	}

	conn, err := client.Dial(addr0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	owned := keyForShard(smap, 0)
	if _, err := conn.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(owned), ifdb.Int(1)); err != nil {
		t.Fatalf("insert of owned key %d: %v", owned, err)
	}
	stray := keyForShard(smap, 1)
	if _, err := conn.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(stray), ifdb.Int(1)); err == nil ||
		!strings.Contains(err.Error(), "shard ownership") {
		t.Fatalf("insert of shard-1 key %d on shard 0: err = %v, want ownership refusal", stray, err)
	}
	// An UPDATE rewriting the key column to another shard's key would
	// scatter the key just as surely as a misrouted insert: the guard
	// vets the new row version too.
	if _, err := conn.Exec(`UPDATE kv SET k = $1 WHERE k = $2`, ifdb.Int(stray), ifdb.Int(owned)); err == nil ||
		!strings.Contains(err.Error(), "shard ownership") {
		t.Fatalf("key-rewriting update to shard-1 key %d: err = %v, want ownership refusal", stray, err)
	}
	// Updates that keep the key in place are unaffected.
	if _, err := conn.Exec(`UPDATE kv SET v = 2 WHERE k = $1`, ifdb.Int(owned)); err != nil {
		t.Fatalf("key-preserving update: %v", err)
	}
}

// TestFencedPrimaryRejectsWrites is the write-side epoch fence
// regression test (ROADMAP: "a fenced primary still accepts direct
// client writes until stopped"). A replica hello carrying a newer
// epoch proves a failover moved past this primary; from that moment
// direct client writes are refused, while reads keep serving.
func TestFencedPrimaryRejectsWrites(t *testing.T) {
	db, err := ifdb.Open(ifdb.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE t (id BIGINT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	p := repl.NewPrimary(db.Engine(), "tok")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(ln)
	defer p.Close()

	// A follower that streamed under epoch+1 says hello: this primary
	// is the stale side of a failover it never heard about.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := &wire.ReplHello{Token: "tok", From: 0, Epoch: db.Epoch() + 1}
	if err := wire.WriteFrame(conn, wire.MsgReplHello, hello.Encode()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgReplErr {
		t.Fatalf("newer-epoch hello answered with %s, want ReplErr", wire.ReplFrameName(typ))
	}
	if e, _ := wire.DecodeReplErr(payload); !strings.Contains(e.Msg, "fenced") {
		t.Fatalf("hello refusal = %q, want a fence", e.Msg)
	}

	// The write side is now fenced too: before this PR the insert below
	// succeeded, growing a history the failover already discarded.
	_, err = admin.Exec(`INSERT INTO t VALUES (2)`)
	if !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("write on fenced primary: err = %v, want ErrFenced", err)
	}
	// DDL and authority mutations are fenced with it.
	if _, err := admin.Exec(`CREATE TABLE t2 (id BIGINT)`); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("DDL on fenced primary: err = %v, want ErrFenced", err)
	}
	// Reads still serve (the node's data is intact, merely stale).
	res, err := admin.Exec(`SELECT id FROM t`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("read on fenced primary: %v (%d rows)", err, len(res.Rows))
	}
}

// TestRouterShardFailoverPerShard drives a per-shard failover through
// the whole stack over real sockets: shard 0 is a durable
// primary/replica pair, shard 1 a lone primary; shard 0's primary
// crashes; the sharded coordinator promotes the replica *within shard
// 0* and bumps the map version; the Router follows the promotion for
// shard 0 — adopting the new map off the version fence — while shard
// 1 keeps serving throughout.
func TestRouterShardFailoverPerShard(t *testing.T) {
	const token = "tok"

	// --- Shard 0: durable primary + streaming replica.
	prim, err := ifdb.Open(ifdb.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	primSrv := wire.NewServer(prim.Engine(), token)
	primLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primAddr := primLn.Addr().String()
	primRepl := repl.NewPrimary(prim.Engine(), token)
	primReplLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go primRepl.Serve(primReplLn)

	replica, err := ifdb.Open(ifdb.Config{
		DataDir: t.TempDir(), ReplicaOf: primReplLn.Addr().String(), ReplToken: token,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	replSrv := wire.NewServer(replica.Engine(), token)
	replSrv.StatusErr = replica.ReplicationErr
	replSrv.Promote = replica.Promote
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	replAddr := replLn.Addr().String()

	// --- Shard 1: lone in-memory primary.
	other := ifdb.MustOpen(ifdb.Config{})
	defer other.Close()
	otherSrv := wire.NewServer(other.Engine(), token)
	otherLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	otherAddr := otherLn.Addr().String()

	// --- Shard map + coordinator (per-shard health and failover).
	smap := &wire.ShardMap{
		Version: 1,
		Keys:    map[string]string{"kv": "k"},
		Shards: []wire.Shard{
			{ID: 0, Primary: primAddr, Replicas: []string{replAddr}},
			{ID: 1, Primary: otherAddr},
		},
	}
	coord, err := cluster.New(cluster.Config{
		Token:         token,
		ProbeInterval: 50 * time.Millisecond,
		FailAfter:     2,
		AutoPromote:   true,
		DialTimeout:   time.Second,
		ShardMap:      smap,
	})
	if err != nil {
		t.Fatal(err)
	}
	mapFn := coord.ShardMap
	for _, s := range []*wire.Server{primSrv, replSrv, otherSrv} {
		s.ShardMap = mapFn
	}
	// Hooks installed; now serve.
	go primSrv.Serve(primLn)
	go replSrv.Serve(replLn)
	defer replSrv.Close()
	go otherSrv.Serve(otherLn)
	defer otherSrv.Close()
	stopCoord := make(chan struct{})
	defer close(stopCoord)
	go coord.Run(stopCoord)

	router, err := client.OpenRouter(client.RouterConfig{
		Addrs: []string{primAddr, replAddr, otherAddr}, Token: token,
		FailoverTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	if _, err := router.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v BIGINT)`); err != nil {
		t.Fatal(err)
	}
	k0 := keyForShard(smap, 0)
	k1 := keyForShard(smap, 1)
	for _, k := range []int64{k0, k1} {
		if _, err := router.Exec(`INSERT INTO kv VALUES ($1, $2)`, ifdb.Int(k), ifdb.Int(1)); err != nil {
			t.Fatalf("pre-crash insert %d: %v", k, err)
		}
	}

	// --- Crash shard 0's primary.
	primSrv.Close()
	primRepl.Close()
	prim.Crash()

	// The coordinator notices, promotes the replica within shard 0, and
	// bumps the map. (The engine flips to primary a moment before the
	// coordinator records the promotion, so poll the map, not the role.)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := coord.ShardMap(); m.Version >= 2 {
			if m.Shards[0].Primary != replAddr {
				t.Fatalf("post-failover map %+v, want shard 0 primary %s", m, replAddr)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator did not promote shard 0's replica (map %+v, replica=%v)",
				coord.ShardMap(), replica.IsReplica())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if replica.IsReplica() {
		t.Fatal("map recorded a promotion but the replica is still a replica")
	}

	// Shard 1 was never disturbed; shard 0 writes follow the promotion
	// (the Router adopts the bumped map off the first version-fence
	// refusal and chases shard 0's new primary).
	if _, err := router.Exec(`UPDATE kv SET v = 2 WHERE k = $1`, ifdb.Int(k1)); err != nil {
		t.Fatalf("shard 1 write during shard 0 failover: %v", err)
	}
	if _, err := router.Exec(`UPDATE kv SET v = 2 WHERE k = $1`, ifdb.Int(k0)); err != nil {
		t.Fatalf("shard 0 write after promotion: %v", err)
	}
	res, err := replica.AdminSession().Exec(`SELECT v FROM kv WHERE k = $1`, ifdb.Int(k0))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Int() != 2 {
		t.Fatalf("shard 0 write did not land on the promoted replica: %v %v", err, res)
	}
}

// TestShardedPreparedStatements covers prepared statements through a
// sharded Router: the shard-key derivation is computed once at
// prepare time by the SQL parser, every execution routes off it with
// that execution's parameters (the ownership guards would refuse any
// misroute), executions never re-parse (asserted via the engines'
// parse counters), IN lists route when single-shard, and a fan-out
// streaming read survives a stale-map refusal that lands mid-merge —
// after one shard's rows already streamed.
func TestShardedPreparedStatements(t *testing.T) {
	var mu sync.Mutex
	cur := &wire.ShardMap{Version: 1, Keys: map[string]string{"kv": "k"}}
	mapFn := func() *wire.ShardMap { mu.Lock(); defer mu.Unlock(); return cur }
	addr0, db0, _ := startShard(t, mapFn, 0)
	addr1, db1, _ := startShard(t, mapFn, 1)
	cur.Shards = []wire.Shard{{ID: 0, Primary: addr0}, {ID: 1, Primary: addr1}}

	router, err := client.OpenRouter(client.RouterConfig{Addrs: []string{addr0, addr1}})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if _, err := router.Exec(`CREATE TABLE kv (k BIGINT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}

	// Prepared sharded inserts: one plan, routed per-execution by $1.
	ins, err := router.Prepare(`INSERT INTO kv VALUES ($1, $2)`)
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	const rows = 40
	for i := 0; i < rows; i++ {
		if _, err := ins.Exec(ifdb.Int(int64(i)), ifdb.Text(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("prepared insert %d: %v", i, err)
		}
	}
	count := func(db *ifdb.DB) int {
		res, err := db.AdminSession().Exec(`SELECT k FROM kv`)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}
	n0, n1 := count(db0), count(db1)
	if n0+n1 != rows || n0 == 0 || n1 == 0 {
		t.Fatalf("prepared inserts split %d+%d, want %d across both shards", n0, n1, rows)
	}

	// Prepared single-key reads route to the owning shard, and — once
	// each shard's pooled conn holds the handles — executions stop
	// invoking either engine's parser entirely.
	sel, err := router.Prepare(`SELECT v FROM kv WHERE k = $1`)
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	for _, i := range []int{0, 7, 19, 33} { // warm both shards' handles
		if res, err := sel.Exec(ifdb.Int(int64(i))); err != nil || len(res.Rows) != 1 ||
			res.Rows[0][0].Text() != fmt.Sprintf("v%d", i) {
			t.Fatalf("prepared read of key %d: %v %v", i, res, err)
		}
	}
	base0, base1 := db0.Engine().ParseCount(), db1.Engine().ParseCount()
	for round := 0; round < 3; round++ {
		for i := 0; i < rows; i++ {
			if _, err := sel.Exec(ifdb.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if g0, g1 := db0.Engine().ParseCount(), db1.Engine().ParseCount(); g0 != base0 || g1 != base1 {
		t.Fatalf("prepared executions re-parsed: shard0 %d->%d, shard1 %d->%d", base0, g0, base1, g1)
	}

	// IN lists: same-shard lists route (the guard on the other shard
	// would refuse a misroute); cross-shard lists fan out — both
	// return exactly the matching rows.
	k0a := keyForShard(cur, 0)
	k0b := keyForShard(cur, 0, k0a)
	k1 := keyForShard(cur, 1)
	selIn, err := router.Prepare(`SELECT v FROM kv WHERE k IN ($1, $2)`)
	if err != nil {
		t.Fatal(err)
	}
	defer selIn.Close()
	if res, err := selIn.Exec(ifdb.Int(k0a), ifdb.Int(k0b)); err != nil || len(res.Rows) != 2 {
		t.Fatalf("same-shard IN list: %v %v", res, err)
	}
	if res, err := selIn.Exec(ifdb.Int(k0a), ifdb.Int(k1)); err != nil || len(res.Rows) != 2 {
		t.Fatalf("cross-shard IN list (fan-out): %v %v", res, err)
	}

	// Streaming fan-out with a stale-map refusal MID-MERGE: consume
	// shard 0's rows, bump the servers' map version, and let the merge
	// hit shard 1 under the now-stale version — the refusal's attached
	// map is adopted and shard 1 re-routed, rows intact.
	keyless, err := router.Prepare(`SELECT k FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	defer keyless.Close()
	stream, err := keyless.Query()
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for stream.Next() {
		got++
		if got == 3 {
			// Shard 0's stream is open and partially consumed; shard
			// 1 has not been contacted. Reconfigure now.
			mu.Lock()
			bumped := cur.Clone()
			bumped.Version = 3
			cur = bumped
			mu.Unlock()
		}
	}
	if err := stream.Close(); err != nil {
		t.Fatalf("fan-out stream across map bump: %v", err)
	}
	if got != rows {
		t.Fatalf("fan-out stream merged %d rows, want %d", got, rows)
	}

	// The Router adopted version 3 mid-stream: a prepared write now
	// routes under it without another refusal round trip.
	if _, err := ins.Exec(ifdb.Int(int64(rows)), ifdb.Text("post-bump")); err != nil {
		t.Fatalf("prepared write after adopted map: %v", err)
	}
}
