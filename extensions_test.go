package ifdb_test

import (
	"errors"
	"testing"

	"ifdb"
)

// TestIntegrityThroughPublicAPI exercises the integrity-label
// extension (paper §3.1, detailed in the thesis) end to end through
// the public API: a sensor pipeline whose readings are endorsed by a
// calibration authority, and a consumer that insists on calibrated
// data.
func TestIntegrityThroughPublicAPI(t *testing.T) {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE readings (id BIGINT PRIMARY KEY, celsius DOUBLE PRECISION)`); err != nil {
		t.Fatal(err)
	}

	lab := db.CreatePrincipal("calibration-lab")
	calibrated, err := db.CreateTag(lab, "calibrated")
	if err != nil {
		t.Fatal(err)
	}

	// The lab's ingest process endorses its writes.
	labSess := db.NewSession(lab)
	if err := labSess.Endorse(calibrated); err != nil {
		t.Fatal(err)
	}
	if _, err := labSess.Exec(`INSERT INTO readings VALUES (1, 36.6)`); err != nil {
		t.Fatal(err)
	}

	// A random process writes an unendorsed reading.
	rando := db.CreatePrincipal("rando")
	if _, err := db.NewSession(rando).Exec(`INSERT INTO readings VALUES (2, 451.0)`); err != nil {
		t.Fatal(err)
	}

	// A consumer with no integrity requirement sees both readings; one
	// claiming `calibrated` integrity sees only the lab's.
	consumer := db.NewSession(rando)
	res, err := consumer.Exec(`SELECT COUNT(*) FROM readings`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("unconstrained consumer: %v", res.Rows[0][0])
	}
	// Claiming integrity requires authority; rando can't.
	if err := consumer.Endorse(calibrated); !errors.Is(err, ifdb.ErrAuthority) {
		t.Fatalf("rando endorsed: %v", err)
	}
	if err := db.Delegate(lab, rando, calibrated); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Endorse(calibrated); err != nil {
		t.Fatal(err)
	}
	res, err = consumer.Exec(`SELECT celsius FROM readings`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Float() != 36.6 {
		t.Fatalf("calibrated consumer: %v", res.Rows)
	}
}

// TestQueryEachThroughPublicAPI: the §10 per-tuple iterator, driving a
// fan-out over differently-tagged rows without accumulating all tags.
func TestQueryEachThroughPublicAPI(t *testing.T) {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	admin := db.AdminSession()
	if _, err := admin.Exec(`CREATE TABLE inbox (id BIGINT PRIMARY KEY, msg TEXT)`); err != nil {
		t.Fatal(err)
	}
	owner := db.CreatePrincipal("owner")
	var tags []ifdb.Tag
	for i, name := range []string{"qe_a", "qe_b", "qe_c"} {
		tg, err := db.CreateTag(owner, name)
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, tg)
		s := db.NewSession(owner)
		if err := s.AddSecrecy(tg); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec(`INSERT INTO inbox VALUES ($1, $2)`,
			ifdb.Int(int64(i)), ifdb.Text(name)); err != nil {
			t.Fatal(err)
		}
	}
	// Reader contaminated for all three can iterate per-row contexts.
	reader := db.NewSession(owner)
	for _, tg := range tags {
		if err := reader.AddSecrecy(tg); err != nil {
			t.Fatal(err)
		}
	}
	rows := 0
	err := reader.QueryEach(`SELECT msg FROM inbox ORDER BY id`, nil,
		func(row []ifdb.Value, rowLabel ifdb.Label) error {
			if rowLabel.Len() != 1 {
				t.Errorf("row label %v, want singleton", rowLabel)
			}
			rows++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Fatalf("iterated %d rows", rows)
	}
}

// TestLabeledSequencesThroughSQL: the §10 sequences design — counter
// partitions per exact label.
func TestLabeledSequencesThroughSQL(t *testing.T) {
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	p := db.CreatePrincipal("p")
	s := db.NewSession(p)
	if _, err := s.Exec(`SELECT create_sequence('order_ids')`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT nextval('order_ids')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("first nextval: %v", res.Rows[0][0])
	}
	// A secret process gets its own stream and leaves the public one
	// untouched (no allocation covert channel).
	tg, err := db.CreateTag(p, "seq_secret")
	if err != nil {
		t.Fatal(err)
	}
	secret := db.NewSession(p)
	if err := secret.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	res, err = secret.Exec(`SELECT nextval('order_ids')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 1 {
		t.Fatalf("secret partition first value: %v", res.Rows[0][0])
	}
	res, _ = s.Exec(`SELECT nextval('order_ids')`)
	if res.Rows[0][0].Int() != 2 {
		t.Fatalf("public counter moved by secret allocation: %v", res.Rows[0][0])
	}
}
