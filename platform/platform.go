// Package platform is the Go analog of the paper's PHP-IF / Python-IF
// application platforms (§2, §7.2). It gives application code a
// DIFC-aware runtime:
//
//   - a per-process (per-request) label that the platform shares with
//     the database session, so contamination acquired in either place
//     confines the whole process;
//   - output interposition — a contaminated process cannot release
//     data to the outside world (web client), which is what turns
//     missing authentication checks into harmless blank pages rather
//     than data breaches (§6.1);
//   - authority closures and reduced-authority calls for the Principle
//     of Least Privilege (§3.3); and
//   - a cache of authority-state lookups, the optimization the paper's
//     PHP-IF used shared memory for (§7.2).
//
// The platform and the DBMS are both part of the trusted base; all
// application code above them is not.
package platform

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"ifdb"
)

// ErrContaminatedOutput is returned when a process attempts to release
// output while its label is non-empty: the outside world has an empty
// label, so the flow is forbidden (§3.2).
var ErrContaminatedOutput = errors.New("platform: process is too contaminated to release output")

// AuthorityCache memoizes HasAuthority lookups. The paper found this
// cache important because the platform checks release authority on
// every response (§7.2). Entries are invalidated wholesale on
// delegation changes made through the platform.
type AuthorityCache struct {
	mu    sync.RWMutex
	db    *ifdb.DB
	cache map[authKey]bool

	// Hits and Misses are cache statistics for the benchmarks.
	Hits, Misses int64
}

type authKey struct {
	p ifdb.Principal
	t ifdb.Tag
}

// NewAuthorityCache creates a cache over db's authority state.
func NewAuthorityCache(db *ifdb.DB) *AuthorityCache {
	return &AuthorityCache{db: db, cache: make(map[authKey]bool)}
}

// Has reports whether p can declassify t, consulting the cache first.
func (c *AuthorityCache) Has(p ifdb.Principal, t ifdb.Tag) bool {
	k := authKey{p, t}
	c.mu.RLock()
	v, ok := c.cache[k]
	c.mu.RUnlock()
	if ok {
		c.mu.Lock()
		c.Hits++
		c.mu.Unlock()
		return v
	}
	v = c.db.HasAuthority(p, t)
	c.mu.Lock()
	c.Misses++
	c.cache[k] = v
	c.mu.Unlock()
	return v
}

// Invalidate clears the cache (called after delegations/revocations).
func (c *AuthorityCache) Invalidate() {
	c.mu.Lock()
	c.cache = make(map[authKey]bool)
	c.mu.Unlock()
}

// Runtime is one application platform instance bound to a database.
type Runtime struct {
	db    *ifdb.DB
	cache *AuthorityCache
}

// New creates a platform runtime over db.
func New(db *ifdb.DB) *Runtime {
	return &Runtime{db: db, cache: NewAuthorityCache(db)}
}

// DB returns the underlying database.
func (rt *Runtime) DB() *ifdb.DB { return rt.db }

// Cache returns the shared authority cache.
func (rt *Runtime) Cache() *AuthorityCache { return rt.cache }

// Process is one DIFC-tracked unit of execution — in the web setting,
// one request. It owns a database session (whose label is the process
// label) and an output buffer that is only released to the outside
// writer if the process ends uncontaminated.
type Process struct {
	rt   *Runtime
	sess *ifdb.Session
	out  bytes.Buffer
}

// NewProcess starts a process acting as principal p with an empty
// label.
func (rt *Runtime) NewProcess(p ifdb.Principal) *Process {
	return &Process{rt: rt, sess: rt.db.NewSession(p)}
}

// Session exposes the process's database session. The platform and
// the session share one label (§7.2).
func (pr *Process) Session() *ifdb.Session { return pr.sess }

// Label returns the current process label.
func (pr *Process) Label() ifdb.Label { return pr.sess.Label() }

// Principal returns the acting principal.
func (pr *Process) Principal() ifdb.Principal { return pr.sess.Principal() }

// AddSecrecy contaminates the process with t.
func (pr *Process) AddSecrecy(t ifdb.Tag) error { return pr.sess.AddSecrecy(t) }

// Declassify removes t, requiring authority. The platform consults its
// cache first to avoid hitting the authority state for the common
// "does this principal own its own tags" checks.
func (pr *Process) Declassify(t ifdb.Tag) error {
	if !pr.rt.cache.Has(pr.sess.Principal(), t) {
		return fmt.Errorf("%w: declassify tag %d", ifdb.ErrAuthority, t)
	}
	return pr.sess.Declassify(t)
}

// DeclassifyAll removes every tag the principal has authority for;
// it returns the tags that remain.
func (pr *Process) DeclassifyAll() ifdb.Label {
	for _, t := range pr.sess.Label() {
		if pr.rt.cache.Has(pr.sess.Principal(), t) {
			_ = pr.sess.Declassify(t)
		}
	}
	return pr.sess.Label()
}

// Printf writes to the process's pending output buffer. Nothing
// reaches the outside world until Release.
func (pr *Process) Printf(format string, args ...interface{}) {
	fmt.Fprintf(&pr.out, format, args...)
}

// Write implements io.Writer into the pending output buffer.
func (pr *Process) Write(p []byte) (int, error) { return pr.out.Write(p) }

// OutputLen returns the pending output size (used by tests).
func (pr *Process) OutputLen() int { return pr.out.Len() }

// Release flushes pending output to w — but only if the process label
// is empty. This is the interposition that stopped the CarTel and
// HotCRP leaks: code that read data it had no authority to release
// simply produces no output (§6.1–6.2).
func (pr *Process) Release(w io.Writer) error {
	if lbl := pr.sess.Label(); !lbl.IsEmpty() {
		pr.out.Reset() // drop, never leak
		return fmt.Errorf("%w (label %v)", ErrContaminatedOutput, lbl)
	}
	_, err := pr.out.WriteTo(w)
	return err
}

// CallClosure runs fn with the named authority closure's principal in
// effect (§3.3).
func (pr *Process) CallClosure(name string, fn func() error) error {
	return pr.sess.CallClosure(name, fn)
}

// WithReducedAuthority runs fn with no authority at all.
func (pr *Process) WithReducedAuthority(fn func() error) error {
	return pr.sess.WithReducedAuthority(fn)
}

// Handler is one web script: it receives the process and the parsed
// request arguments and writes output through the process.
type Handler func(pr *Process, args map[string]string) error

// ServeRequest runs one request through a handler with full DIFC
// bracketing: fresh process, handler, then release-or-refuse. It
// returns the released output (empty if the process ended
// contaminated) and the handler error, mirroring how PHP-IF turns
// leaks into blank responses rather than failures.
func (rt *Runtime) ServeRequest(p ifdb.Principal, h Handler, args map[string]string, w io.Writer) error {
	pr := rt.NewProcess(p)
	if err := h(pr, args); err != nil {
		return err
	}
	if err := pr.Release(w); err != nil {
		if errors.Is(err, ErrContaminatedOutput) {
			// The request produced no releasable output; the client
			// sees an empty page, not an error oracle.
			return nil
		}
		return err
	}
	return nil
}
