package platform_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ifdb"
	"ifdb/platform"
)

func setup(t *testing.T) (*platform.Runtime, ifdb.Principal, ifdb.Tag) {
	t.Helper()
	db := ifdb.MustOpen(ifdb.Config{IFC: true})
	if _, err := db.AdminSession().Exec(`CREATE TABLE diary (id BIGINT PRIMARY KEY, text TEXT)`); err != nil {
		t.Fatal(err)
	}
	alice := db.CreatePrincipal("alice")
	tg, err := db.CreateTag(alice, "alice_diary")
	if err != nil {
		t.Fatal(err)
	}
	return platform.New(db), alice, tg
}

func TestOutputInterposition(t *testing.T) {
	rt, alice, tg := setup(t)
	pr := rt.NewProcess(alice)
	if err := pr.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Session().Exec(`INSERT INTO diary VALUES (1, 'dear diary')`); err != nil {
		t.Fatal(err)
	}
	pr.Printf("the diary says: %s", "dear diary")

	// Contaminated: release refused, buffer dropped.
	var out bytes.Buffer
	err := pr.Release(&out)
	if !errors.Is(err, platform.ErrContaminatedOutput) {
		t.Fatalf("release: %v", err)
	}
	if out.Len() != 0 || pr.OutputLen() != 0 {
		t.Fatal("contaminated output leaked or retained")
	}

	// After declassification (alice owns the tag): released.
	pr2 := rt.NewProcess(alice)
	if err := pr2.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	pr2.Printf("ok")
	if err := pr2.Declassify(tg); err != nil {
		t.Fatal(err)
	}
	if err := pr2.Release(&out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "ok" {
		t.Fatalf("released: %q", out.String())
	}
}

func TestDeclassifyRequiresAuthorityThroughCache(t *testing.T) {
	rt, _, tg := setup(t)
	mallory := rt.DB().CreatePrincipal("mallory")
	pr := rt.NewProcess(mallory)
	if err := pr.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	if err := pr.Declassify(tg); !errors.Is(err, ifdb.ErrAuthority) {
		t.Fatalf("declassify: %v", err)
	}
	// Cache stats recorded the lookup; a repeat is a hit.
	c := rt.Cache()
	before := c.Hits
	_ = c.Has(mallory, tg)
	if c.Hits != before+1 {
		t.Fatalf("cache hits: %d -> %d", before, c.Hits)
	}
}

func TestCacheInvalidation(t *testing.T) {
	rt, alice, tg := setup(t)
	bob := rt.DB().CreatePrincipal("bob")
	if rt.Cache().Has(bob, tg) {
		t.Fatal("bob has authority already")
	}
	// Delegate; the stale cache still answers false until invalidated.
	if err := rt.DB().NewSession(alice).Delegate(bob, tg); err != nil {
		t.Fatal(err)
	}
	if rt.Cache().Has(bob, tg) {
		t.Fatal("cache should still be stale")
	}
	rt.Cache().Invalidate()
	if !rt.Cache().Has(bob, tg) {
		t.Fatal("cache not refreshed")
	}
}

func TestDeclassifyAll(t *testing.T) {
	rt, alice, tg := setup(t)
	other := rt.DB().CreatePrincipal("other")
	otherTag, err := rt.DB().CreateTag(other, "other_tag")
	if err != nil {
		t.Fatal(err)
	}
	pr := rt.NewProcess(alice)
	if err := pr.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	if err := pr.AddSecrecy(otherTag); err != nil {
		t.Fatal(err)
	}
	rest := pr.DeclassifyAll()
	if !rest.Equal(ifdb.NewLabel(otherTag)) {
		t.Fatalf("residual label: %v", rest)
	}
}

func TestServeRequestBlankPageOnLeak(t *testing.T) {
	rt, alice, tg := setup(t)
	leaky := func(pr *platform.Process, _ map[string]string) error {
		if err := pr.AddSecrecy(tg); err != nil {
			return err
		}
		pr.Printf("SECRET")
		return nil // forgets to declassify
	}
	var out bytes.Buffer
	// ServeRequest succeeds but the client sees a blank page, not an
	// error oracle.
	mallory := rt.DB().CreatePrincipal("mallory")
	if err := rt.ServeRequest(mallory, leaky, nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("leak: %q", out.String())
	}
	// The owner's process can declassify inside the handler.
	fine := func(pr *platform.Process, _ map[string]string) error {
		if err := pr.AddSecrecy(tg); err != nil {
			return err
		}
		pr.Printf("mine")
		return pr.Declassify(tg)
	}
	if err := rt.ServeRequest(alice, fine, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mine") {
		t.Fatalf("owner output: %q", out.String())
	}
}

func TestClosureThroughPlatform(t *testing.T) {
	rt, alice, tg := setup(t)
	db := rt.DB()
	worker := db.CreatePrincipal("worker")
	if err := db.NewSession(alice).Delegate(worker, tg); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterClosure("summary", alice, worker, ifdb.NewLabel(tg)); err != nil {
		t.Fatal(err)
	}
	mallory := db.CreatePrincipal("mallory")
	pr := rt.NewProcess(mallory)
	if err := pr.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	// Inside the closure, the worker's authority applies.
	if err := pr.CallClosure("summary", func() error {
		return pr.Session().Declassify(tg)
	}); err != nil {
		t.Fatal(err)
	}
	if !pr.Label().IsEmpty() {
		t.Fatalf("label: %v", pr.Label())
	}
	// Outside, mallory is back to nothing.
	if err := pr.Session().Declassify(tg); err != nil {
		// expected no-op: tag already removed; re-add and check failure
		t.Fatal(err)
	}
	if err := pr.AddSecrecy(tg); err != nil {
		t.Fatal(err)
	}
	if err := pr.Session().Declassify(tg); err == nil {
		t.Fatal("mallory declassified outside the closure")
	}
	if err := pr.CallClosure("nosuch", func() error { return nil }); err == nil {
		t.Fatal("missing closure ran")
	}
}

func TestWriteThroughProcess(t *testing.T) {
	rt, alice, _ := setup(t)
	pr := rt.NewProcess(alice)
	n, err := pr.Write([]byte("abc"))
	if err != nil || n != 3 || pr.OutputLen() != 3 {
		t.Fatalf("Write: %d %v", n, err)
	}
	var out bytes.Buffer
	if err := pr.Release(&out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "abc" {
		t.Fatalf("out: %q", out.String())
	}
}
