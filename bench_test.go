// Benchmarks regenerating every table and figure in the paper's
// evaluation (§8). Each benchmark corresponds to one experiment in
// DESIGN.md's experiment index:
//
//	BenchmarkFig3Workload   — E1: the Fig. 3 request mix, exercised end to end
//	BenchmarkFig4Web*       — E2: CarTel web throughput, db-bound and web-bound
//	BenchmarkFig5Script*    — E3: per-script idle latency
//	BenchmarkSensorIngest*  — E4: §8.2.2 sensor processing throughput
//	BenchmarkFig6DBT2*      — E5: DBT-2 NOTPM vs tags/label, in-memory & disk
//	BenchmarkLabelSpace     — E7: §8.3 per-tag tuple space overhead
//
// `go test -bench . -benchmem` runs them all; `cmd/ifdb-bench` prints
// the paper-style tables instead.
package ifdb_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ifdb"
	"ifdb/internal/bench/cartelweb"
	"ifdb/internal/bench/dbt2"
	"ifdb/internal/bench/sensor"
)

// --- shared fixtures -------------------------------------------------------

var (
	webOnce sync.Once
	webFixt map[string]*cartelweb.Bench
	webErr  error
)

func webBench(tb testing.TB, key string) *cartelweb.Bench {
	webOnce.Do(func() {
		webFixt = make(map[string]*cartelweb.Bench)
		for _, ifc := range []bool{false, true} {
			name := "baseline"
			if ifc {
				name = "ifdb"
			}
			cfg := cartelweb.DefaultConfig(ifc)
			b, err := cartelweb.Setup(cfg)
			if err != nil {
				webErr = err
				return
			}
			webFixt[name] = b

			cfgW := cfg
			cfgW.RenderWork = 400
			bw, err := cartelweb.Setup(cfgW)
			if err != nil {
				webErr = err
				return
			}
			webFixt[name+"-web"] = bw
		}
	})
	if webErr != nil {
		tb.Fatal(webErr)
	}
	return webFixt[key]
}

// --- E1 / Fig. 3 -----------------------------------------------------------

// BenchmarkFig3Workload runs the exact Fig. 3 request mix end to end
// (IFDB configuration), one sampled request per iteration.
func BenchmarkFig3Workload(b *testing.B) {
	fx := webBench(b, "ifdb")
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fx.DoSampledRequest(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2 / Fig. 4 -----------------------------------------------------------

func benchWebThroughput(b *testing.B, key string, workers int) {
	fx := webBench(b, key)
	b.SetParallelism(workers)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(int64(b.N)))
		for pb.Next() {
			if err := fx.DoSampledRequest(rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4WebDBBoundBaseline is Fig. 4's db-bound row, PostgreSQL+PHP column.
func BenchmarkFig4WebDBBoundBaseline(b *testing.B) { benchWebThroughput(b, "baseline", 8) }

// BenchmarkFig4WebDBBoundIFDB is Fig. 4's db-bound row, IFDB+PHP-IF column.
func BenchmarkFig4WebDBBoundIFDB(b *testing.B) { benchWebThroughput(b, "ifdb", 8) }

// BenchmarkFig4WebServerBoundBaseline is Fig. 4's web-server-bound row, baseline.
func BenchmarkFig4WebServerBoundBaseline(b *testing.B) { benchWebThroughput(b, "baseline-web", 2) }

// BenchmarkFig4WebServerBoundIFDB is Fig. 4's web-server-bound row, IFDB.
func BenchmarkFig4WebServerBoundIFDB(b *testing.B) { benchWebThroughput(b, "ifdb-web", 2) }

// --- E3 / Fig. 5 -----------------------------------------------------------

func benchScript(b *testing.B, key, script string) {
	fx := webBench(b, key)
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fx.DoScript(rng, script); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Script covers all seven Fig. 5 scripts in both
// configurations as sub-benchmarks.
func BenchmarkFig5Script(b *testing.B) {
	scripts := []string{"login.php", "drives.php", "cars.php", "get_cars.php",
		"drives_top.php", "edit_account.php", "friends.php"}
	for _, key := range []string{"baseline", "ifdb"} {
		for _, script := range scripts {
			b.Run(key+"/"+script, func(b *testing.B) { benchScript(b, key, script) })
		}
	}
}

// --- E4 / §8.2.2 -----------------------------------------------------------

func benchSensor(b *testing.B, ifc bool) {
	fx, err := sensor.Setup(ifc, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	ts := int64(1000)
	for i := 0; i < b.N; i++ {
		if err := fx.ReplayOne(i, ts); err != nil {
			b.Fatal(err)
		}
		ts += sensor.BatchSize*15 + 3600
	}
	b.StopTimer()
	// One iteration ingests BatchSize measurements.
	b.ReportMetric(float64(b.N*sensor.BatchSize)/b.Elapsed().Seconds(), "meas/s")
}

// BenchmarkSensorIngestBaseline is §8.2.2's PostgreSQL column
// (2479 meas/s on the paper's hardware).
func BenchmarkSensorIngestBaseline(b *testing.B) { benchSensor(b, false) }

// BenchmarkSensorIngestIFDB is §8.2.2's IFDB column (2439 meas/s;
// −1.6%).
func BenchmarkSensorIngestIFDB(b *testing.B) { benchSensor(b, true) }

// --- E5 / Fig. 6 -----------------------------------------------------------

func benchDBT2(b *testing.B, cfg dbt2.Config) {
	fx, err := dbt2.Setup(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := fx.Session()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fx.NewOrder(s, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Minutes(), "NOTPM")
}

// BenchmarkFig6DBT2 sweeps tags-per-label for the in-memory and
// disk-bound DBT-2 databases, with the IFC-off baseline alongside —
// the full Fig. 6 series.
func BenchmarkFig6DBT2(b *testing.B) {
	for _, disk := range []bool{false, true} {
		regime := "inmem"
		base := dbt2.DefaultInMemory()
		if disk {
			regime = "disk"
			base = dbt2.DefaultOnDisk()
		}
		b.Run(regime+"/baseline", func(b *testing.B) {
			cfg := base
			benchDBT2(b, cfg)
		})
		for _, k := range []int{0, 1, 2, 4, 6, 8, 10} {
			b.Run(fmt.Sprintf("%s/ifdb-k%d", regime, k), func(b *testing.B) {
				cfg := base
				cfg.IFC = true
				cfg.TagsPerLabel = k
				benchDBT2(b, cfg)
			})
		}
	}
}

// --- E7 / §8.3 space overhead ---------------------------------------------

// BenchmarkLabelSpace measures stored bytes per tuple as tags are
// added: the paper reports 4 bytes per tag (on an 89-byte Order_Line
// tuple, +4.5% per tag).
func BenchmarkLabelSpace(b *testing.B) {
	for _, k := range []int{0, 1, 2, 5, 10} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			db := ifdb.MustOpen(ifdb.Config{IFC: true})
			admin := db.AdminSession()
			if _, err := admin.Exec(`CREATE TABLE t (a BIGINT, b BIGINT, c TEXT)`); err != nil {
				b.Fatal(err)
			}
			owner := db.CreatePrincipal("o")
			s := db.NewSession(owner)
			tags := make([]ifdb.Tag, k)
			for i := 0; i < k; i++ {
				tg, err := s.CreateTag(fmt.Sprintf("sp%d", i))
				if err != nil {
					b.Fatal(err)
				}
				tags[i] = tg
			}
			for _, tg := range tags {
				if err := s.AddSecrecy(tg); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(`INSERT INTO t VALUES ($1, $2, 'order-line-ish')`,
					ifdb.Int(int64(i)), ifdb.Int(int64(i*2))); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			stats := db.Engine().Stats()
			b.ReportMetric(float64(stats.TupleBytes)/float64(stats.Tuples), "bytes/tuple")
		})
	}
}
